"""End-to-end chaos smoke: crash a live leader mid-run, survive it.

Spawns a 4-replica / 2-instance Orthrus cluster as real ``repro serve``
OS processes, drives it with the closed-loop load generator, and SIGKILLs
replica 0 — the leader of instance 0 — two seconds into the run.  The
acceptance properties from the fault-injection issue:

* the survivors perform a view change (failure detector fires, leadership
  rotates) instead of stalling the global log,
* transactions keep completing with ``f + 1`` matching replies,
* the surviving replicas report identical ``StateStore`` digests.

Every await is bounded (``asyncio.wait_for``) so a stalled view change
fails the test quickly instead of hanging the CI workflow.

Scale via ``REPRO_LIVE_CHAOS_TXS`` (CI uses 800; the default keeps local
``pytest`` runs quick).
"""

from __future__ import annotations

import asyncio
import os

from repro.cluster.faults import FaultPlan
from repro.runtime.chaos import run_chaos
from repro.runtime.client import ClientConfig
from repro.runtime.cluster import ClusterSpec
from repro.runtime.loadgen import LoadGenConfig
from repro.workload.config import WorkloadConfig

CHAOS_TRANSACTIONS = int(os.environ.get("REPRO_LIVE_CHAOS_TXS", "300"))

WORKLOAD = WorkloadConfig(num_accounts=512, seed=42, payment_fraction=1.0)

#: Wall-clock budget for the whole chaos run; generous against CI jitter but
#: far below the workflow timeout, so a wedged view change fails fast here.
RUN_TIMEOUT = 180.0


#: Open-loop submission rate: paces the run so the crash lands mid-run
#: (a closed loop on localhost would finish before the crash timer fires).
SUBMIT_RATE_TPS = 150.0


def test_leader_crash_view_change_and_recovery_across_processes():
    plan = FaultPlan(crashes={0: 1.0}, view_change_timeout=1.5)
    spec = ClusterSpec(
        num_replicas=4,
        num_instances=2,
        batch_size=64,
        batch_interval=0.02,
        view_change_timeout=plan.view_change_timeout,
        workload=WORKLOAD,
        faults=plan,
    )
    load = LoadGenConfig(
        transactions=CHAOS_TRANSACTIONS,
        mode="open",
        rate_tps=SUBMIT_RATE_TPS,
        workload=WORKLOAD,
        client=ClientConfig(client_id=1000, timeout=5.0, retries=3),
    )

    result = asyncio.run(asyncio.wait_for(run_chaos(spec, load), timeout=RUN_TIMEOUT))
    report = result.report

    # The only process exit is the scheduled SIGKILL of replica 0.
    assert [(e.action, e.replica) for e in result.events] == [("crash", 0)]
    assert result.unexpected_exits == []

    # Liveness through the crash: every submission still completed with
    # f + 1 matching replies, and most committed.
    assert report.failed == 0
    assert report.completed == CHAOS_TRANSACTIONS
    assert report.metrics.committed >= CHAOS_TRANSACTIONS * 0.99

    # The crashed leader's instance was recovered by a view change.
    assert set(report.view_changes) == {1, 2, 3}
    assert result.view_changes >= 1

    # Safety: the three survivors converged to one state.
    assert set(report.state_digests) == {1, 2, 3}
    assert report.digests_agree, f"survivors diverged: {report.state_digests}"
