"""Headline claims of Sec. VII-B, derived from the Fig. 3 sweep.

The paper summarises its WAN results as: with one straggler on 128 replicas,
Orthrus delivers roughly an order of magnitude more throughput than the
pre-determined protocols and cuts latency by ~69 % vs ISS/RCC and up to 87 %
vs Mir-BFT, while staying within a few percent of its own no-straggler
throughput.  This benchmark recomputes those derived quantities.
"""

from conftest import run_once

from repro.experiments.reporting import format_table, relative_change
from repro.experiments.scenarios import scalability_sweep


def test_headline_claims_wan_straggler(benchmark, bench_scale, record_table, engine):
    def run():
        clean = scalability_sweep(
            "wan", stragglers=0, protocols=("orthrus", "iss", "mir", "ladon"),
            scale=bench_scale, engine=engine,
        )
        degraded = scalability_sweep(
            "wan", stragglers=1, protocols=("orthrus", "iss", "mir", "ladon"),
            scale=bench_scale, engine=engine,
        )
        return clean, degraded

    clean, degraded = run_once(benchmark, run)
    largest = max(point.num_replicas for point in clean)
    clean_by = {(p.protocol, p.num_replicas): p for p in clean}
    degraded_by = {(p.protocol, p.num_replicas): p for p in degraded}

    orthrus_clean = clean_by[("orthrus", largest)]
    orthrus_straggler = degraded_by[("orthrus", largest)]
    iss_straggler = degraded_by[("iss", largest)]
    mir_straggler = degraded_by[("mir", largest)]
    ladon_straggler = degraded_by[("ladon", largest)]

    rows = [
        (
            "Orthrus self throughput drop with straggler",
            "6.5%",
            f"{-relative_change(orthrus_clean.throughput_ktps, orthrus_straggler.throughput_ktps) * 100:.1f}%",
        ),
        (
            "ISS -> Orthrus latency reduction (straggler)",
            "68.6%",
            f"{-relative_change(iss_straggler.latency_s, orthrus_straggler.latency_s) * 100:.1f}%",
        ),
        (
            "Mir -> Orthrus latency reduction (straggler)",
            "87.0%",
            f"{-relative_change(mir_straggler.latency_s, orthrus_straggler.latency_s) * 100:.1f}%",
        ),
        (
            "Ladon -> Orthrus latency reduction (straggler)",
            "16.7%",
            f"{-relative_change(ladon_straggler.latency_s, orthrus_straggler.latency_s) * 100:.1f}%",
        ),
        (
            "Orthrus / ISS throughput ratio (straggler)",
            "9.5x",
            f"{orthrus_straggler.throughput_ktps / max(iss_straggler.throughput_ktps, 1e-9):.1f}x",
        ),
    ]
    table = format_table(["claim", "paper", "measured"], rows)
    record_table("headline_claims_wan", table)

    # Qualitative checks: who wins, and by a large factor where the paper
    # reports a large factor.
    assert orthrus_straggler.throughput_ktps > 3 * iss_straggler.throughput_ktps
    assert orthrus_straggler.latency_s < iss_straggler.latency_s
    assert orthrus_straggler.latency_s < mir_straggler.latency_s
    drop = 1 - orthrus_straggler.throughput_ktps / orthrus_clean.throughput_ktps
    assert drop < 0.35
