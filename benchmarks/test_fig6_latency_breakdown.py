"""Figure 6 (and Figure 1b): five-stage latency breakdown, Orthrus vs ISS.

Setting: 16 replicas, WAN, one 10x straggler.  The paper reports that the
global-ordering stage dominates ISS's latency (up to 92.8 % of the total)
while Orthrus confirms payment transactions without it.
"""

from conftest import run_once

from repro.experiments.reporting import breakdown_table
from repro.experiments.scenarios import latency_breakdown


def test_fig6_breakdown_orthrus_vs_iss(benchmark, bench_scale, record_table, engine):
    results = run_once(
        benchmark,
        lambda: latency_breakdown(protocols=("orthrus", "iss"), scale=bench_scale, engine=engine),
    )
    record_table("fig6_latency_breakdown", breakdown_table(results))
    by_protocol = {result.protocol: result for result in results}
    orthrus = by_protocol["orthrus"]
    iss = by_protocol["iss"]
    # ISS spends the bulk of its end-to-end latency waiting for global
    # ordering; Orthrus spends a small fraction there.
    assert iss.stages["global_ordering"] > 2 * orthrus.stages["global_ordering"]
    assert iss.global_ordering_share > 0.4
    assert orthrus.global_ordering_share < iss.global_ordering_share


def test_fig1b_iss_motivation_breakdown(benchmark, bench_scale, record_table, engine):
    results = run_once(
        benchmark,
        lambda: latency_breakdown(protocols=("iss",), scale=bench_scale, engine=engine),
    )
    record_table("fig1b_iss_breakdown", breakdown_table(results))
    iss = results[0]
    # The motivation figure: global ordering is the dominant latency stage
    # for ISS once a straggler is present.
    assert iss.stages["global_ordering"] == max(iss.stages.values())
