"""Figure 3: throughput and latency vs replica count in the WAN setting.

Reproduces all four panels: (a) throughput without stragglers, (b) latency
without stragglers, (c) throughput with one straggler, (d) latency with one
straggler, for Orthrus, ISS, RCC, Mir-BFT, DQBFT and Ladon.
"""

from conftest import run_once

from repro.experiments.reporting import scalability_table
from repro.experiments.scenarios import scalability_sweep


def test_fig3ab_wan_no_straggler(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark, lambda: scalability_sweep("wan", stragglers=0, scale=bench_scale, engine=engine)
    )
    record_table("fig3ab_wan_no_straggler", scalability_table(points))
    assert all(point.throughput_ktps > 0 for point in points)
    # Orthrus stays in the top throughput tier and at or below ISS latency.
    by_protocol = {
        (p.protocol, p.num_replicas): p for p in points
    }
    for replicas in {p.num_replicas for p in points}:
        orthrus = by_protocol[("orthrus", replicas)]
        iss = by_protocol[("iss", replicas)]
        assert orthrus.throughput_ktps > 0.6 * iss.throughput_ktps
        assert orthrus.latency_s <= iss.latency_s * 1.15


def test_fig3cd_wan_one_straggler(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark, lambda: scalability_sweep("wan", stragglers=1, scale=bench_scale, engine=engine)
    )
    record_table("fig3cd_wan_one_straggler", scalability_table(points))
    by_protocol = {(p.protocol, p.num_replicas): p for p in points}
    largest = max(p.num_replicas for p in points)
    orthrus = by_protocol[("orthrus", largest)]
    iss = by_protocol[("iss", largest)]
    mir = by_protocol[("mir", largest)]
    # The paper's headline behaviours: pre-determined global ordering
    # collapses behind a straggler while Orthrus keeps most of its throughput
    # and confirms transactions with far lower latency.
    assert orthrus.throughput_ktps > 3 * iss.throughput_ktps
    assert orthrus.latency_s < iss.latency_s
    assert orthrus.latency_s < mir.latency_s
