"""End-to-end smoke test of the live cluster runtime (real OS processes).

Spawns a 4-replica / 2-instance Orthrus cluster as ``repro serve``
subprocesses on localhost, drives it with the closed-loop load generator, and
checks the deployment-level acceptance properties:

* every submission completes with ``f + 1`` matching replies,
* at least :data:`SMOKE_TRANSACTIONS` payment transactions commit,
* every replica reports the identical ``StateStore`` digest at shutdown.

The whole suite runs twice: once under the default struct-packed binary
wire codec (v2) and once with the cluster and client pinned to the
canonical-JSON fallback (v1), so both codec paths carry the same
deployment-level guarantees.

Scale via ``REPRO_LIVE_SMOKE_TXS`` (the CI live-smoke job and the acceptance
run use 1000; the default keeps local ``pytest`` runs quick).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.runtime.client import ClientConfig, OrthrusClient
from repro.runtime.cluster import ClusterSpec, LocalCluster
from repro.runtime.loadgen import LoadGenConfig, LoadGenerator
from repro.workload.config import WorkloadConfig

SMOKE_TRANSACTIONS = int(os.environ.get("REPRO_LIVE_SMOKE_TXS", "300"))

WORKLOAD = WorkloadConfig(num_accounts=512, seed=42, payment_fraction=1.0)


@pytest.fixture(
    scope="module",
    params=[None, 1],
    ids=["wire-binary", "wire-json-fallback"],
)
def live_cluster(request):
    spec = ClusterSpec(
        num_replicas=4,
        num_instances=2,
        batch_size=64,
        batch_interval=0.02,
        workload=WorkloadConfig(num_accounts=512, seed=42),
        wire_version=request.param,
    )
    cluster = LocalCluster(spec)
    cluster.start()
    try:
        yield cluster
    finally:
        cluster.stop()


def test_live_cluster_commits_payments_with_matching_digests(live_cluster):
    generator = LoadGenerator(
        list(live_cluster.endpoints),
        LoadGenConfig(
            transactions=SMOKE_TRANSACTIONS,
            mode="closed",
            concurrency=32,
            workload=WORKLOAD,
            client=ClientConfig(
                client_id=1000,
                timeout=5.0,
                retries=2,
                wire_version=live_cluster.spec.wire_version,
            ),
        ),
    )
    report = asyncio.run(generator.run())

    assert live_cluster.check() == [], "replica processes died during the run"
    assert report.failed == 0
    assert report.completed == SMOKE_TRANSACTIONS
    assert report.metrics.committed >= SMOKE_TRANSACTIONS * 0.99
    assert report.metrics.throughput_tps > 0
    # All four replicas converged to one state.
    assert len(report.state_digests) == 4
    assert report.digests_agree, f"replicas diverged: {report.state_digests}"
    # The five-stage breakdown spans the client and replica clocks.
    for stage in ("send", "preprocessing", "partial_ordering", "reply"):
        assert report.stage_breakdown.get(stage, 0.0) > 0, stage


def test_live_cluster_serves_status_probes(live_cluster):
    async def probe():
        async with OrthrusClient(
            list(live_cluster.endpoints),
            ClientConfig(client_id=1001, wire_version=live_cluster.spec.wire_version),
        ) as client:
            return await client.cluster_status()

    statuses = asyncio.run(probe())
    assert {status.replica for status in statuses} == {0, 1, 2, 3}
    assert all(status.view_changes == 0 for status in statuses)


def test_live_cluster_serves_metrics_probes(live_cluster):
    """Every replica answers the ``metrics`` control message with a live,
    nonzero instrument snapshot (the commit test above already drove load
    through the module-scoped cluster)."""

    async def probe():
        async with OrthrusClient(
            list(live_cluster.endpoints),
            ClientConfig(client_id=1002, wire_version=live_cluster.spec.wire_version),
        ) as client:
            return await client.cluster_metrics(require_all=True)

    replies = asyncio.run(probe())
    assert {reply.replica for reply in replies} == {0, 1, 2, 3}
    for reply in replies:
        assert reply.uptime > 0
        assert reply.metrics, f"replica {reply.replica} returned no instruments"
        assert reply.metrics.get("transport.frames_sent", 0) > 0, reply.replica
        assert reply.metrics.get("transport.bytes_in", 0) > 0, reply.replica
        assert reply.metrics.get("server.committed", 0) > 0, reply.replica
