"""End-to-end partition smoke: isolate a minority, heal, catch up, converge.

Spawns a 4-replica / 2-instance Orthrus cluster as real ``repro serve`` OS
processes with durability on, drives it with open-loop load, and splits
replica 3 away from {0, 1, 2} mid-run via the chaos controller's
``LinkUpdate`` push.  The acceptance contract from the partition issue:

* the partition and its heal both fire (``unfired_actions`` empty) and the
  quorum side keeps committing throughout — every submission completes,
* after the heal the isolated replica catches up through the catch-up
  watchdog's state transfer and converges to the majority's exact
  ``StateStore`` digest,
* the client-observed consistency checkers hold: zero committed/frontier
  regressions (the partitioned process never restarts, so no resets), no
  settled digest fork,
* the pre-fault phase shows zero regressions and post-heal availability
  recovers to the pre-fault level within tolerance,
* the transport actually dropped frames at the partition boundary
  (``transport.partition_drops`` went positive somewhere in the cluster —
  drops count sender-side, so the broadcasting majority is the reliable
  witness, not the idle minority).

Every await is bounded (``asyncio.wait_for``) so a wedged catch-up fails
the test quickly instead of hanging the CI workflow.

Scale via ``REPRO_LIVE_PARTITION_TXS`` (CI uses 600; the default keeps
local ``pytest`` runs quick).  Point ``REPRO_LIVE_PARTITION_RUN_DIR`` at a
directory to keep the metrics/trace artifacts somewhere predictable.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from pathlib import Path

from repro.cluster.faults import FaultPlan
from repro.runtime.chaos import run_chaos
from repro.runtime.client import ClientConfig
from repro.runtime.cluster import ClusterSpec
from repro.runtime.loadgen import LoadGenConfig
from repro.workload.config import WorkloadConfig

PARTITION_TRANSACTIONS = int(os.environ.get("REPRO_LIVE_PARTITION_TXS", "600"))

WORKLOAD = WorkloadConfig(num_accounts=512, seed=78, payment_fraction=1.0)

#: Wall-clock budget for the scenario; generous against CI jitter but far
#: below the workflow timeout, so a wedged state transfer fails fast here.
RUN_TIMEOUT = 180.0

#: Open-loop rate: paces the run so the partition lands after a healthy
#: pre-phase and the heal lands well before the load ends.
SUBMIT_RATE_TPS = 100.0

#: The fault window: isolate at t=1s, heal 2s later.  The load (600 txs at
#: 100 tps = 6s) spans heal + the settle margin, so the post-heal phase
#: window exists and carries real demand for the availability comparison.
PARTITION_AT = 1.0
PARTITION_DURATION = 2.0


def _run_dir() -> str:
    base = os.environ.get("REPRO_LIVE_PARTITION_RUN_DIR")
    if base:
        return str(Path(base) / "partition")
    return tempfile.mkdtemp(prefix="repro-partition-smoke-")


def _last_metrics_row(replica_dir: Path) -> dict:
    rows = [
        json.loads(line)
        for line in (replica_dir / "metrics.jsonl").read_text().splitlines()
        if line.strip()
    ]
    assert rows, f"no metrics snapshots under {replica_dir}"
    return rows[-1]


def test_minority_partition_heals_catches_up_and_converges():
    run_dir = _run_dir()
    # Isolate replica 3 (a minority: quorums of 3 survive on the other
    # side).  The 2s detector matches the registry partition grid; the
    # isolated replica may cast view-change votes into the void, but the
    # quorum side never loses a leader, so the run survives on drops +
    # catch-up, not view changes.  It also bounds the phase-window settle
    # margin, so the post-heal window lands inside the 6s load.
    plan = FaultPlan.with_partition(
        PARTITION_AT, ((3,),), PARTITION_DURATION, view_change_timeout=2.0
    )
    spec = ClusterSpec(
        num_replicas=4,
        num_instances=2,
        batch_size=16,
        batch_interval=0.02,
        epoch_length=2,
        view_change_timeout=plan.view_change_timeout,
        workload=WORKLOAD,
        durability=True,
        run_dir=run_dir,
        faults=plan,
    )
    load = LoadGenConfig(
        transactions=PARTITION_TRANSACTIONS,
        mode="open",
        rate_tps=SUBMIT_RATE_TPS,
        workload=WORKLOAD,
        client=ClientConfig(client_id=1000, timeout=5.0, retries=3),
    )

    result = asyncio.run(asyncio.wait_for(run_chaos(spec, load), timeout=RUN_TIMEOUT))
    report = result.report

    # The plan executed in full: the split and its heal both fired inside
    # the load window, and nothing died.
    assert [e.action for e in result.events] == ["partition", "heal"]
    assert result.unfired_actions == []
    assert result.unexpected_exits == []

    # Liveness through the partition: the quorum side answered everything.
    assert report.failed == 0
    assert report.completed == PARTITION_TRANSACTIONS
    assert report.metrics.committed >= PARTITION_TRANSACTIONS * 0.99

    # Convergence after the heal: all four replicas (including the healed
    # minority, which catches up via live state transfer) settle on one
    # digest.
    assert set(report.state_digests) == {0, 1, 2, 3}
    assert report.digests_agree, f"replicas diverged: {report.state_digests}"

    # Client-observed consistency: no replica's committed counter or
    # delivered frontier ever regressed, and there is no settled fork.
    consistency = report.consistency
    assert consistency is not None
    assert consistency.committed_regressions == 0, consistency.lines()
    assert consistency.frontier_regressions == 0, consistency.lines()
    assert consistency.digest_forks == 0
    assert consistency.ok

    # Per-episode phase SLOs: a healthy pre-phase with zero regressions,
    # and post-heal availability back within tolerance of pre-fault.
    phases = {slo.phase: slo for slo in report.phases}
    pre = next(
        (slo for name, slo in phases.items() if name == "pre"), None
    )
    post = next(
        (slo for name, slo in phases.items() if name.startswith("post:")), None
    )
    assert pre is not None and post is not None, sorted(phases)
    assert (pre.regressions or 0) == 0
    assert post.availability >= pre.availability - 0.2, (
        f"availability did not recover: pre={pre.availability:.2f} "
        f"post={post.availability:.2f}"
    )

    # The fault was real: frames died at the partition boundary.  Drops are
    # counted sender-side, and the idle minority may attempt no peer sends
    # inside a short window — but the majority broadcasts consensus traffic
    # at replica 3 throughout, so cluster-wide the counter must move.
    drops = 0.0
    for replica in range(4):
        row = _last_metrics_row(Path(run_dir) / f"replica-{replica}")
        assert row["replica"] == replica
        drops += row.get("transport.partition_drops", 0)
    assert drops > 0
