"""Figure 4: throughput and latency vs replica count in the LAN setting."""

from conftest import run_once

from repro.experiments.reporting import scalability_table
from repro.experiments.scenarios import scalability_sweep


def test_fig4ab_lan_no_straggler(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark, lambda: scalability_sweep("lan", stragglers=0, scale=bench_scale, engine=engine)
    )
    record_table("fig4ab_lan_no_straggler", scalability_table(points))
    by_key = {(p.protocol, p.num_replicas): p for p in points}
    for replicas in {p.num_replicas for p in points}:
        # LAN runs are faster than WAN runs for every protocol (the paper's
        # "higher throughput and lower latency" observation).
        assert by_key[("orthrus", replicas)].latency_s < 10.0
        assert by_key[("orthrus", replicas)].throughput_ktps > 0


def test_fig4cd_lan_one_straggler(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark, lambda: scalability_sweep("lan", stragglers=1, scale=bench_scale, engine=engine)
    )
    record_table("fig4cd_lan_one_straggler", scalability_table(points))
    by_key = {(p.protocol, p.num_replicas): p for p in points}
    largest = max(p.num_replicas for p in points)
    orthrus = by_key[("orthrus", largest)]
    iss = by_key[("iss", largest)]
    ladon = by_key[("ladon", largest)]
    # Same trend as WAN: roughly 8x the throughput of the pre-determined
    # protocols and latency at or below Ladon's.
    assert orthrus.throughput_ktps > 3 * iss.throughput_ktps
    assert orthrus.latency_s <= ladon.latency_s * 1.1
