"""Figure 7: Orthrus throughput and latency over time under detectable faults.

Setting: 16 replicas, WAN, f in {0, 1, 5} leaders crash at t = 9 s, PBFT
view-change timeout of 10 s.  The paper observes a >50 % throughput drop
while the faulty instances are down (contract transactions cannot be globally
ordered), recovery shortly after the view change completes (~19 s), and a
latency spike as the blocked transactions flush.
"""

from conftest import run_once

from repro.experiments.reporting import fault_timeline_table
from repro.experiments.scenarios import detectable_fault_timelines


def _average_rate(points, start, end):
    window = [p.throughput_ktps for p in points if start <= p.time < end]
    return sum(window) / len(window) if window else 0.0


def test_fig7_throughput_and_latency_over_time(benchmark, bench_scale, record_table, engine):
    timelines = run_once(
        benchmark,
        lambda: detectable_fault_timelines(
            fault_counts=(0, 1, 5), fault_time=9.0, duration=35.0, scale=bench_scale,
            engine=engine,
        ),
    )
    record_table("fig7_detectable_faults_timeline", fault_timeline_table(timelines))
    by_faults = {timeline.faulty_replicas: timeline.points for timeline in timelines}

    # Fault-free run: no collapse after t = 9 s.
    healthy_before = _average_rate(by_faults[0], 4.0, 9.0)
    healthy_after = _average_rate(by_faults[0], 10.0, 18.0)
    assert healthy_after > 0.5 * healthy_before

    # One crash: throughput drops sharply during the outage window and
    # recovers after the view change completes (9 s crash + 10 s timeout).
    before = _average_rate(by_faults[1], 4.0, 9.0)
    during = _average_rate(by_faults[1], 11.0, 19.0)
    after = _average_rate(by_faults[1], 22.0, 30.0)
    assert during < 0.6 * before
    assert after > 1.5 * during

    # Five crashes hurt at least as much as one during the outage.
    during_five = _average_rate(by_faults[5], 11.0, 19.0)
    assert during_five <= during * 1.25

    # The post-recovery latency spike: blocked transactions confirm late.
    latencies_one = [p.latency_s for p in by_faults[1] if 19.0 <= p.time <= 30.0]
    latencies_before = [p.latency_s for p in by_faults[1] if 4.0 <= p.time < 9.0]
    assert max(latencies_one, default=0.0) > max(latencies_before, default=0.0)
