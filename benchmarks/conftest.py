"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
section.  Results (the same rows/series the paper plots) are printed and also
written to ``benchmarks/results/`` so EXPERIMENTS.md can reference them.

The run size is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``smoke`` - minutes-long sanity runs (reduced replica grid),
* ``ci``    - the default; full replica grid with laptop-sized windows,
* ``paper`` - the full windows reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Scale name used by all scenario benchmarks."""
    return os.environ.get("REPRO_BENCH_SCALE", "ci")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benchmark tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Callable that persists and echoes a benchmark's output table."""

    def _record(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{table}\n")

    return _record


def run_once(benchmark, func):
    """Run a scenario exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
