"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
section.  Results (the same rows/series the paper plots) are printed and also
written to ``benchmarks/results/`` so EXPERIMENTS.md can reference them.

All figure benchmarks share one session-scoped
:class:`~repro.experiments.engine.ExperimentEngine`, so overlapping grid
cells (e.g. the Fig. 3 sweep and the headline-claims table) are simulated
once and served from the cache afterwards.

Environment variables:

* ``REPRO_BENCH_SCALE`` — run size: ``smoke`` (minutes-long sanity runs),
  ``ci`` (the default; full replica grid with laptop-sized windows) or
  ``paper`` (the full windows reported in EXPERIMENTS.md).
* ``REPRO_BENCH_JOBS`` — worker processes for grid cells (default ``1``;
  parallel runs produce results identical to serial runs).
* ``REPRO_BENCH_CACHE_DIR`` — result-cache directory (defaults to
  ``benchmarks/results/cache``; set to an empty string to disable caching).
  Cached cells carry a fingerprint of the ``repro`` sources, so editing
  simulation code invalidates them automatically.  Note that on a warm cache
  pytest-benchmark timings measure cache loads, not simulations.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.engine import ExperimentEngine
from repro.experiments.reporting import engine_summary

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Scale name used by all scenario benchmarks."""
    return os.environ.get("REPRO_BENCH_SCALE", "ci")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benchmark tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine(results_dir) -> ExperimentEngine:
    """Session-wide experiment engine shared by every figure benchmark."""
    cache_dir = os.environ.get(
        "REPRO_BENCH_CACHE_DIR", str(results_dir / "cache")
    )
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    instance = ExperimentEngine(cache_dir=cache_dir or None, jobs=jobs)
    yield instance
    print(f"\n[experiment engine] {engine_summary(instance)}")


@pytest.fixture()
def record_table(results_dir):
    """Callable that persists and echoes a benchmark's output table."""

    def _record(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{table}\n")

    return _record


def run_once(benchmark, func):
    """Run a scenario exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
