"""Escrow walkthrough: the paper's Appendix B running example, step by step.

Usage::

    python examples/smart_contract_escrow.py

Drives an :class:`~repro.core.orthrus.OrthrusCore` directly (no network, no
simulator) through the three-transaction example of Appendix B:

* ``tx0`` - Alice pays Bob $2 (single payer, confirmed on the partial path),
* ``tx1`` - Alice and Bob jointly pay Carol $1 each (multi-payer atomicity
  through the escrow mechanism, split across two instances),
* ``tx2`` - Alice and Bob jointly invoke a smart contract costing $1 each
  (escrowed immediately, executed once globally ordered).

After every step the script prints the balances, the outstanding escrow
reservations and each transaction's status.
"""

from __future__ import annotations

from repro.core import CoreConfig, OrthrusCore
from repro.core.partition import LoadBalancedPartitioner
from repro.ledger import StateStore, contract_call, payment, simple_transfer
from repro.ledger.blocks import Block


class Walkthrough:
    """Tiny two-instance deployment driven block by block."""

    def __init__(self) -> None:
        store = StateStore()
        store.load_accounts({"alice": 4, "bob": 0, "carol": 0})
        store.create_shared("contract-slot", 0)
        self.core = OrthrusCore(
            CoreConfig(num_instances=2, batch_size=4, epoch_length=100), store
        )
        # Pin the example's accounts to the instances Appendix B uses.
        self.core.partitioner = LoadBalancedPartitioner(
            2, {"alice": 0, "carol": 0, "bob": 1}
        )
        self._next_sn = [0, 0]

    def deliver(self, instance: int, transactions, note: str) -> None:
        block = Block.create(
            instance=instance,
            sequence_number=self._next_sn[instance],
            transactions=transactions,
            state=self.core.delivered_state(),
            proposer=instance,
            rank=self.core.next_rank(),
        )
        self._next_sn[instance] += 1
        outcomes = self.core.on_block_delivered(block)
        print(f"\n== {note}")
        for outcome in outcomes:
            print(f"   confirmed {outcome.tx.tx_id}: {outcome.status.value}"
                  f" via the {outcome.path.value} path")
        self.show()

    def show(self) -> None:
        store = self.core.store
        balances = {k: store.balance_of(k) for k in ("alice", "bob", "carol")}
        print(f"   balances          : {balances}")
        print(f"   contract slot     : {store.balance_of('contract-slot')}")
        reservations = [
            f"{entry.key}<-{entry.amount} ({entry.tx_id})" for entry in self.core.escrow
        ]
        print(f"   escrow reservations: {reservations or 'none'}")


def main() -> None:
    walkthrough = Walkthrough()
    print("Initial state: Alice $4, Bob $0, Carol $0")
    walkthrough.show()

    tx0 = simple_transfer("alice", "bob", 2, tx_id="tx0")
    walkthrough.deliver(0, [tx0], "Block (0,0): tx0 Alice -> Bob $2")

    tx1 = payment({"alice": 1, "bob": 1}, {"carol": 2}, tx_id="tx1")
    walkthrough.deliver(0, [tx1], "Block (0,1): tx1 escrows Alice's $1 (waiting for Bob)")
    walkthrough.deliver(1, [tx1], "Block (1,0): tx1 escrows Bob's $1 -> atomically commits")

    tx2 = contract_call({"alice": 1, "bob": 1}, {"contract-slot": 9}, tx_id="tx2")
    walkthrough.deliver(0, [tx2], "Block (0,2): tx2 escrows Alice's $1 (contract pending)")
    walkthrough.deliver(1, [tx2], "Block (1,1): tx2 escrows Bob's $1 (awaiting global order)")
    walkthrough.deliver(0, [], "Block (0,3): empty block advances global ordering -> tx2 executes")


if __name__ == "__main__":
    main()
