"""Payment-network scenario: why partial ordering matters behind a straggler.

Usage::

    python examples/payment_network.py

This is the motivating workload from the paper's introduction: a blockchain
payment network where most transactions are independent transfers.  One of
the consensus instances runs on a machine that is 10x slower than the rest
(the straggler).  The script runs the same workload under Orthrus and under
two baselines (ISS with pre-determined global ordering, Ladon with dynamic
global ordering) and prints the throughput and latency each achieves.
"""

from __future__ import annotations

from repro import FaultPlan, PipelineConfig, WorkloadConfig, run_pipeline_experiment
from repro.experiments.reporting import format_table


def run(protocol: str, straggler: bool):
    config = PipelineConfig(
        protocol=protocol,
        num_replicas=16,
        environment="wan",
        samples_per_block=6,
        duration=60.0,
        warmup=10.0,
        seed=7,
        workload=WorkloadConfig(payment_fraction=0.8, seed=7),
        faults=FaultPlan.with_straggler(instance=1) if straggler else FaultPlan.none(),
    )
    return run_pipeline_experiment(config)


def main() -> None:
    rows = []
    for protocol in ("orthrus", "ladon", "iss"):
        healthy = run(protocol, straggler=False)
        degraded = run(protocol, straggler=True)
        rows.append(
            (
                protocol,
                f"{healthy.throughput_ktps:.1f}",
                f"{healthy.latency.mean:.2f}",
                f"{degraded.throughput_ktps:.1f}",
                f"{degraded.latency.mean:.2f}",
            )
        )
    print("Payment network, 16 replicas, WAN, 80% payments")
    print(
        format_table(
            [
                "protocol",
                "ktps (healthy)",
                "latency s (healthy)",
                "ktps (straggler)",
                "latency s (straggler)",
            ],
            rows,
        )
    )
    print(
        "\nOrthrus keeps confirming payments through its partial-ordering fast"
        "\npath even while the straggler throttles global ordering; the"
        "\npre-determined baseline stalls behind the gap in its global log."
    )


if __name__ == "__main__":
    main()
