"""Quickstart: run a small Orthrus deployment and print its metrics.

Usage::

    python examples/quickstart.py

Builds a 16-replica WAN deployment under the quorum-fidelity driver, replays
an Ethereum-style workload (46 % payments / 54 % contract calls), and prints
throughput, latency and the five-stage latency breakdown.
"""

from __future__ import annotations

from repro import FaultPlan, PipelineConfig, WorkloadConfig, run_pipeline_experiment


def main() -> None:
    config = PipelineConfig(
        protocol="orthrus",
        num_replicas=16,
        environment="wan",
        samples_per_block=8,
        duration=30.0,
        warmup=5.0,
        seed=1,
        workload=WorkloadConfig(seed=42),
        faults=FaultPlan.none(),
    )
    metrics = run_pipeline_experiment(config)

    print("Orthrus quickstart (16 replicas, WAN, no faults)")
    print(f"  throughput        : {metrics.throughput_ktps:8.1f} ktps")
    print(f"  mean latency      : {metrics.latency.mean:8.2f} s")
    print(f"  p95 latency       : {metrics.latency.p95:8.2f} s")
    print(f"  confirmed         : {metrics.confirmed:8d} sampled transactions")
    print(f"  partial-path      : {metrics.partial_path:8d} (payments, no global ordering)")
    print(f"  global-path       : {metrics.global_path:8d} (contract calls)")
    print("  latency breakdown :")
    for stage, seconds in metrics.stage_breakdown.items():
        print(f"    {stage:<18} {seconds:6.3f} s")


if __name__ == "__main__":
    main()
