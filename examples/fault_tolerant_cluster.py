"""Fault tolerance demo: leader crash, view change, and recovery.

Usage::

    python examples/fault_tolerant_cluster.py

Runs the message-level cluster (full PBFT replicas exchanging individual
protocol messages over the simulated network).  Replica 1 crashes one second
into the run while client traffic keeps arriving; the failure detector times
out, the remaining replicas run a view change for the instance replica 1 was
leading, and the new leader drains the backlog.  The script prints the view
changes observed, the confirmation count and the final state agreement.
"""

from __future__ import annotations

from repro import MessageCluster, MessageClusterConfig, WorkloadConfig
from repro.cluster.faults import FaultPlan
from repro.workload.generator import EthereumStyleWorkload


def main() -> None:
    workload_config = WorkloadConfig(num_accounts=128, num_shared_objects=8, seed=11)
    config = MessageClusterConfig(
        protocol="orthrus",
        num_replicas=4,
        batch_size=8,
        view_change_timeout=2.0,
        seed=11,
        workload=workload_config,
        faults=FaultPlan(crashes={1: 1.0}, view_change_timeout=2.0),
    )
    cluster = MessageCluster(config)
    trace = EthereumStyleWorkload(workload_config).generate(150)
    cluster.submit_transactions(trace.transactions, rate_tps=60)
    metrics = cluster.run(25.0)

    print("Fault-tolerant cluster (4 replicas, replica 1 crashes at t=1s)")
    print(f"  transactions submitted : {len(trace)}")
    print(f"  transactions confirmed : {metrics.confirmed}")
    print(f"  mean end-to-end latency: {metrics.latency.mean:.3f} s")
    print(f"  protocol messages sent : {int(metrics.extra['messages_sent'])}")

    for replica in cluster.replicas:
        if replica.node_id == 1:
            continue
        views = {
            instance: endpoint.view
            for instance, endpoint in replica.endpoints.items()
            if endpoint.view > 0
        }
        print(f"  replica {replica.node_id} view changes: {views or 'none'}")

    digests = {
        replica.core.store.state_digest()
        for replica in cluster.replicas
        if replica.node_id != 1
    }
    print(f"  honest replicas agree on state: {len(digests) == 1}")


if __name__ == "__main__":
    main()
