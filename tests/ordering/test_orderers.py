"""Tests for the four global-ordering engines and the rank tracker."""


from repro.ledger.blocks import Block, SystemState
from repro.ledger.transactions import simple_transfer
from repro.ordering.base import (
    NO_CONFLICTS,
    UNKNOWN_CONFLICTS,
    BlockConflicts,
    OrderingIndex,
    RankTracker,
)
from repro.ordering.dependency import DependencyGlobalOrderer
from repro.ordering.dqbft import DQBFTGlobalOrderer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer


def make_block(instance, sn, rank=None, empty=False):
    txs = [] if empty else [simple_transfer("a", "b", 1, tx_id=f"t-{instance}-{sn}")]
    return Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=txs,
        state=SystemState.initial(4),
        proposer=instance,
        rank=rank,
    )


def conflicts(local=(), global_=()):
    return BlockConflicts(frozenset(local), frozenset(global_))


class TestOrderingIndex:
    def test_comparison_by_rank_then_instance(self):
        assert OrderingIndex(1, 3) < OrderingIndex(2, 0)
        assert OrderingIndex(2, 0) < OrderingIndex(2, 1)

    def test_of_block_defaults_missing_rank_to_zero(self):
        block = make_block(2, 0, rank=None)
        assert OrderingIndex.of(block) == OrderingIndex(0, 2)


class TestRankTracker:
    def test_ranks_strictly_increase(self):
        tracker = RankTracker()
        first = tracker.next_rank()
        second = tracker.next_rank()
        assert second > first

    def test_observed_blocks_raise_future_ranks(self):
        tracker = RankTracker()
        tracker.observe(make_block(0, 0, rank=41))
        assert tracker.next_rank() == 42

    def test_observe_rank_out_of_band(self):
        tracker = RankTracker()
        tracker.observe_rank(10)
        assert tracker.next_rank() == 11


class TestPredeterminedOrdering:
    def test_positions_interleave_round_robin(self):
        orderer = PredeterminedGlobalOrderer(3)
        assert orderer.global_position(make_block(0, 0)) == 0
        assert orderer.global_position(make_block(2, 0)) == 2
        assert orderer.global_position(make_block(0, 1)) == 3

    def test_in_order_delivery_releases_immediately(self):
        orderer = PredeterminedGlobalOrderer(2)
        assert len(orderer.on_deliver(make_block(0, 0))) == 1
        assert len(orderer.on_deliver(make_block(1, 0))) == 1
        assert orderer.ordered_count == 2

    def test_gap_stalls_the_log(self):
        orderer = PredeterminedGlobalOrderer(2)
        # Instance 0 is a straggler: its block never arrives.
        assert orderer.on_deliver(make_block(1, 0)) == []
        assert orderer.on_deliver(make_block(1, 1)) == []
        assert orderer.pending_count() == 2
        assert orderer.next_missing() == (0, 0)
        # The missing block finally arrives and everything flushes in order.
        released = orderer.on_deliver(make_block(0, 0))
        assert [b.block_id for b in released] == [(0, 0), (1, 0)]

    def test_noop_blocks_fill_gaps(self):
        orderer = PredeterminedGlobalOrderer(2)
        orderer.on_deliver(make_block(1, 0))
        released = orderer.on_deliver(make_block(0, 0, empty=True))
        assert len(released) == 2
        assert orderer.stats.noop_blocks == 1

    def test_duplicate_or_stale_delivery_ignored(self):
        orderer = PredeterminedGlobalOrderer(2)
        orderer.on_deliver(make_block(0, 0))
        orderer.on_deliver(make_block(1, 0))
        assert orderer.on_deliver(make_block(0, 0)) == []

    def test_global_order_matches_position_order(self):
        orderer = PredeterminedGlobalOrderer(2)
        for block in (
            make_block(1, 0),
            make_block(0, 1),
            make_block(1, 1),
            make_block(0, 0),
        ):
            orderer.on_deliver(block)
        positions = [orderer.global_position(b) for b in orderer.global_log]
        assert positions == sorted(positions)


class TestLadonOrdering:
    def test_release_requires_every_instance_to_advance(self):
        orderer = LadonGlobalOrderer(2)
        # Instance 1's block cannot be confirmed yet: instance 0 could still
        # produce a block with the same rank and a lower instance index.
        assert orderer.on_deliver(make_block(1, 0, rank=1)) == []
        # Instance 0 delivers with a higher rank -> the bar moves past rank 1
        # and both blocks become globally ordered.
        released = orderer.on_deliver(make_block(0, 0, rank=2))
        assert [b.block_id for b in released] == [(1, 0), (0, 0)]

    def test_lower_instance_index_wins_rank_ties(self):
        orderer = LadonGlobalOrderer(2)
        # A block from instance 0 at rank 1 is safe immediately: any future
        # block from instance 1 is ordered after (1, 0) by the tie-break.
        released = orderer.on_deliver(make_block(0, 0, rank=1))
        assert [b.block_id for b in released] == [(0, 0)]

    def test_straggler_release_in_bulk(self):
        orderer = LadonGlobalOrderer(2)
        # Instance 1 keeps delivering, but instance 0 (the straggler, and the
        # tie-break winner) has not delivered anything, so everything waits.
        for sn, rank in ((0, 1), (1, 2), (2, 3)):
            assert orderer.on_deliver(make_block(1, sn, rank=rank)) == []
        assert orderer.pending_count() == 3
        # The straggler finally delivers one block carrying a recent rank and
        # the whole backlog flushes at once (the behaviour Fig. 3c relies on).
        released = orderer.on_deliver(make_block(0, 0, rank=4))
        assert [b.block_id for b in released] == [(1, 0), (1, 1), (1, 2), (0, 0)]
        assert orderer.pending_count() == 0

    def test_tie_broken_by_instance_index(self):
        orderer = LadonGlobalOrderer(3)
        orderer.on_deliver(make_block(2, 0, rank=1))
        orderer.on_deliver(make_block(1, 0, rank=1))
        released = orderer.on_deliver(make_block(0, 0, rank=2))
        assert [b.instance for b in released] == [1, 2, 0]

    def test_global_log_is_sorted_by_ordering_index(self):
        orderer = LadonGlobalOrderer(3)
        blocks = [
            make_block(0, 0, rank=1),
            make_block(1, 0, rank=2),
            make_block(2, 0, rank=3),
            make_block(0, 1, rank=4),
            make_block(1, 1, rank=5),
            make_block(2, 1, rank=6),
        ]
        for block in blocks:
            orderer.on_deliver(block)
        indices = [OrderingIndex.of(b) for b in orderer.global_log]
        assert indices == sorted(indices)

    def test_duplicate_delivery_ignored(self):
        orderer = LadonGlobalOrderer(2)
        block = make_block(0, 0, rank=1)
        orderer.on_deliver(block)
        assert orderer.on_deliver(block) == []

    def test_bar_initial_value(self):
        orderer = LadonGlobalOrderer(3)
        assert orderer.current_bar() == OrderingIndex(1, 0)


class TestDependencyOrdering:
    def test_independent_block_escapes_the_bar(self):
        orderer = DependencyGlobalOrderer(2)
        # Under Ladon instance 1's block would wait for the bar; with no
        # conflicting predecessor it is released on the spot.
        released = orderer.on_deliver(make_block(1, 0, rank=1), NO_CONFLICTS)
        assert [b.block_id for b in released] == [(1, 0)]
        assert orderer.pending_count() == 0

    def test_barred_block_waits_for_the_bar_like_ladon(self):
        orderer = DependencyGlobalOrderer(2)
        assert orderer.on_deliver(make_block(1, 0, rank=1), conflicts(global_={"obj"})) == []
        assert orderer.pending_count() == 1
        # Instance 0 advances past rank 1 -> the bar passes the barred block.
        released = orderer.on_deliver(make_block(0, 0, rank=2), NO_CONFLICTS)
        assert [b.block_id for b in released] == [(1, 0), (0, 0)]

    def test_local_conflict_waits_behind_barred_predecessor(self):
        orderer = DependencyGlobalOrderer(2)
        # sn 0 spends "a" and touches a shared object -> barred (instance 1
        # loses the rank tie-break, so rank 1 is not yet below the bar).
        assert (
            orderer.on_deliver(make_block(1, 0, rank=1), conflicts(local={"a"}, global_={"obj"}))
            == []
        )
        # sn 1 spends "a" only; it must not overtake its conflicting
        # predecessor even though it carries no global key itself.
        assert orderer.on_deliver(make_block(1, 1, rank=2), conflicts(local={"a"})) == []
        # A disjoint spend of the same instance is free to release.
        released = orderer.on_deliver(make_block(1, 2, rank=3), conflicts(local={"b"}))
        assert [b.block_id for b in released] == [(1, 2)]
        # The bar passes rank 1 and the "a" chain flushes in index order.
        released = orderer.on_deliver(make_block(0, 0, rank=2), NO_CONFLICTS)
        assert [b.block_id for b in released] == [(1, 0), (0, 0), (1, 1)]

    def test_local_chain_releases_in_delivery_order(self):
        orderer = DependencyGlobalOrderer(2)
        for sn in range(3):
            released = orderer.on_deliver(make_block(0, sn, rank=sn + 1), conflicts(local={"a"}))
            assert [b.block_id for b in released] == [(0, sn)]

    def test_unknown_conflicts_degrade_to_ladon(self):
        dep = DependencyGlobalOrderer(2)
        ladon = LadonGlobalOrderer(2)
        blocks = [
            make_block(1, 0, rank=1),
            make_block(1, 1, rank=2),
            make_block(0, 0, rank=3),
        ]
        for block in blocks:
            expected = [b.block_id for b in ladon.on_deliver(block)]
            got = [b.block_id for b in dep.on_deliver(block, UNKNOWN_CONFLICTS)]
            assert got == expected
        assert [b.block_id for b in dep.global_log] == [b.block_id for b in ladon.global_log]

    def test_noop_without_metadata_is_conflict_free(self):
        orderer = DependencyGlobalOrderer(2)
        released = orderer.on_deliver(make_block(1, 0, rank=1, empty=True))
        assert [b.block_id for b in released] == [(1, 0)]
        assert orderer.stats.noop_blocks == 1

    def test_missing_metadata_without_assignment_is_conservative(self):
        orderer = DependencyGlobalOrderer(2)
        # No conflicts passed and no key_instance function: treated as
        # conflicting with everything, so it waits for the bar.
        assert orderer.on_deliver(make_block(1, 0, rank=1)) == []
        released = orderer.on_deliver(make_block(0, 0, rank=2))
        assert [b.block_id for b in released] == [(1, 0), (0, 0)]

    def test_key_instance_function_self_derives_conflicts(self):
        # All payers hash to some bucket; with every key assigned to the
        # block's own instance the transfer block is local-only and releases
        # immediately even though the bar has not moved.
        orderer = DependencyGlobalOrderer(2, key_instance=lambda key: 1)
        released = orderer.on_deliver(make_block(1, 0, rank=1))
        assert [b.block_id for b in released] == [(1, 0)]

    def test_conflict_graph_size_tracks_live_edges(self):
        orderer = DependencyGlobalOrderer(2)
        assert orderer.conflict_graph_size() == 0
        orderer.on_deliver(make_block(1, 0, rank=1), conflicts(local={"a"}, global_={"obj"}))
        assert orderer.conflict_graph_size() == 2
        orderer.on_deliver(make_block(1, 1, rank=2), conflicts(local={"a", "b"}))
        assert orderer.conflict_graph_size() == 4
        # Bar passes rank 2 -> everything releases, the graph empties.
        orderer.on_deliver(make_block(0, 0, rank=3), NO_CONFLICTS)
        assert orderer.conflict_graph_size() == 0
        assert orderer.pending_count() == 0

    def test_duplicate_delivery_ignored(self):
        orderer = DependencyGlobalOrderer(2)
        block = make_block(1, 0, rank=1)
        assert orderer.on_deliver(block, NO_CONFLICTS) == [block]
        assert orderer.on_deliver(block, NO_CONFLICTS) == []
        assert orderer.on_deliver(make_block(1, 0, rank=1), conflicts(global_={"obj"})) == []

    def test_release_wait_stats_count_deliveries(self):
        orderer = DependencyGlobalOrderer(2)
        orderer.on_deliver(make_block(1, 0, rank=1), conflicts(global_={"obj"}))
        orderer.on_deliver(make_block(1, 1, rank=2), conflicts(global_={"obj"}))
        orderer.on_deliver(make_block(0, 0, rank=3), NO_CONFLICTS)
        # Block (1, 0) waited two deliveries, (1, 1) one, (0, 0) zero.
        assert orderer.stats.blocks_ordered == 3
        assert orderer.stats.max_release_wait == 2
        assert orderer.stats.total_release_wait == 3
        assert orderer.stats.mean_release_wait == 1.0

    def test_global_log_orders_conflicting_blocks_by_index(self):
        orderer = DependencyGlobalOrderer(3)
        shared = conflicts(global_={"obj"})
        orderer.on_deliver(make_block(2, 0, rank=1), shared)
        orderer.on_deliver(make_block(1, 0, rank=2), shared)
        orderer.on_deliver(make_block(0, 0, rank=3), shared)
        # Instance 2's frontier (rank 1) holds the bar at (2, 2): the first
        # two barred blocks pass it, the rank-3 one still waits.
        barred = [b.block_id for b in orderer.global_log]
        assert barred == [(2, 0), (1, 0)]
        orderer.on_deliver(make_block(1, 1, rank=4), NO_CONFLICTS)
        # Instance 2 advances past rank 3 -> the last barred block flushes,
        # ordered before the higher-indexed independent block.
        released = orderer.on_deliver(make_block(2, 1, rank=5), NO_CONFLICTS)
        assert [b.block_id for b in released] == [(0, 0), (2, 1)]
        indices = [OrderingIndex.of(b) for b in orderer.global_log if b.block_id[1] == 0]
        assert indices == sorted(indices)


class TestDQBFTOrdering:
    def test_block_waits_for_sequencer_decision(self):
        orderer = DQBFTGlobalOrderer(2)
        assert orderer.on_deliver(make_block(1, 0)) == []
        released = orderer.on_order_decision([(1, 0)])
        assert [b.block_id for b in released] == [(1, 0)]

    def test_decision_waits_for_block_content(self):
        orderer = DQBFTGlobalOrderer(2)
        assert orderer.on_order_decision([(0, 0)]) == []
        released = orderer.on_deliver(make_block(0, 0))
        assert [b.block_id for b in released] == [(0, 0)]

    def test_execution_follows_decision_order(self):
        orderer = DQBFTGlobalOrderer(2)
        orderer.on_deliver(make_block(0, 0))
        orderer.on_deliver(make_block(1, 0))
        released = orderer.on_order_decision([(1, 0), (0, 0)])
        assert [b.block_id for b in released] == [(1, 0), (0, 0)]

    def test_duplicate_decisions_ignored(self):
        orderer = DQBFTGlobalOrderer(2)
        orderer.on_deliver(make_block(0, 0))
        orderer.on_order_decision([(0, 0)])
        assert orderer.on_order_decision([(0, 0)]) == []

    def test_head_of_line_blocking_on_missing_block(self):
        orderer = DQBFTGlobalOrderer(2)
        orderer.on_order_decision([(0, 0), (1, 0)])
        # Only the second block's content arrives; it must wait for the first.
        assert orderer.on_deliver(make_block(1, 0)) == []
        released = orderer.on_deliver(make_block(0, 0))
        assert [b.block_id for b in released] == [(0, 0), (1, 0)]
