"""Tests for blocks and the system state tuple."""

from repro.ledger.blocks import BLOCK_HEADER_BYTES, Block, SystemState
from repro.ledger.transactions import simple_transfer


class TestSystemState:
    def test_initial_state_is_bottom(self):
        state = SystemState.initial(3)
        assert list(state) == [-1, -1, -1]
        assert len(state) == 3

    def test_advanced_is_monotone(self):
        state = SystemState.initial(2).advanced(0, 5)
        assert state.sequence_numbers == (5, -1)
        assert state.advanced(0, 3).sequence_numbers == (5, -1)

    def test_covers(self):
        low = SystemState((1, 2, 3))
        high = SystemState((2, 2, 4))
        assert high.covers(low)
        assert not low.covers(high)
        assert high.covers(high)

    def test_covers_requires_same_arity(self):
        assert not SystemState((1, 2)).covers(SystemState((1, 2, 3)))

    def test_digest_fields(self):
        assert SystemState((0, 1)).digest_fields() == [0, 1]


class TestBlock:
    def _block(self, txs=None, sn=0, instance=1, rank=None):
        txs = txs if txs is not None else [simple_transfer("a", "b", 1)]
        return Block.create(
            instance=instance,
            sequence_number=sn,
            transactions=txs,
            state=SystemState.initial(2),
            proposer=instance,
            rank=rank,
        )

    def test_block_identity_and_iteration(self):
        tx = simple_transfer("a", "b", 1)
        block = self._block([tx], sn=3, instance=2)
        assert block.block_id == (2, 3)
        assert list(block) == [tx]
        assert len(block) == 1

    def test_noop_detection(self):
        assert self._block([]).is_noop
        assert not self._block().is_noop

    def test_size_includes_header_and_payloads(self):
        txs = [simple_transfer("a", "b", 1) for _ in range(3)]
        block = self._block(txs)
        assert block.size_bytes == BLOCK_HEADER_BYTES + sum(t.payload_size for t in txs)

    def test_digest_changes_with_contents(self):
        block_a = self._block([simple_transfer("a", "b", 1, tx_id="t1")])
        block_b = self._block([simple_transfer("a", "b", 1, tx_id="t2")])
        assert block_a.digest != block_b.digest

    def test_digest_stable_for_same_contents(self):
        tx = simple_transfer("a", "b", 1, tx_id="t1")
        assert self._block([tx]).digest == self._block([tx]).digest

    def test_rank_carried(self):
        assert self._block(rank=17).rank == 17
        assert self._block().rank is None
