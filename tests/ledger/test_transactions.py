"""Tests for transaction construction and classification."""


from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.transactions import (
    Transaction,
    TransactionType,
    classify,
    contract_call,
    next_transaction_id,
    payment,
    reset_transaction_counter,
    simple_transfer,
)


class TestFactories:
    def test_simple_transfer_structure(self):
        tx = simple_transfer("alice", "bob", 7)
        assert tx.is_payment
        assert tx.payers() == ["alice"]
        assert tx.payees() == ["bob"]
        assert tx.total_debit() == 7
        assert tx.total_credit() == 7
        assert not tx.is_multi_payer

    def test_multi_payer_payment(self):
        tx = payment({"alice": 3, "bob": 4}, {"carol": 7})
        assert tx.is_multi_payer
        assert tx.payers() == ["alice", "bob"]
        assert tx.total_debit() == tx.total_credit() == 7

    def test_contract_call_structure(self):
        tx = contract_call({"alice": 2}, {"slot-1": 42}, credits={"bob": 1})
        assert tx.is_contract
        assert tx.payers() == ["alice"]
        assert tx.shared_keys() == ["slot-1"]
        assert tx.payees() == ["bob"]

    def test_payment_accepts_pair_sequences(self):
        tx = payment([("alice", 5)], [("bob", 5)])
        assert tx.payers() == ["alice"]

    def test_generated_ids_are_unique(self):
        reset_transaction_counter()
        ids = {next_transaction_id() for _ in range(100)}
        assert len(ids) == 100

    def test_explicit_tx_id_respected(self):
        tx = simple_transfer("a", "b", 1, tx_id="custom-1")
        assert tx.tx_id == "custom-1"

    def test_payload_size_drives_wire_size(self):
        tx = payment({"a": 1}, {"b": 1}, payload_size=900)
        assert tx.size_bytes == 900


class TestClassification:
    def test_owned_commutative_ops_are_payment(self):
        ops = [
            ObjectOperation("a", OperationKind.DECREMENT, 1),
            ObjectOperation("b", OperationKind.INCREMENT, 1),
        ]
        assert classify(ops) is TransactionType.PAYMENT

    def test_shared_object_forces_contract(self):
        ops = [
            ObjectOperation("a", OperationKind.DECREMENT, 1),
            ObjectOperation("s", OperationKind.INCREMENT, 1, ObjectType.SHARED),
        ]
        assert classify(ops) is TransactionType.CONTRACT

    def test_assign_forces_contract(self):
        ops = [ObjectOperation("a", OperationKind.ASSIGN, 1)]
        assert classify(ops) is TransactionType.CONTRACT


class TestTransactionSemantics:
    def test_equality_and_hash_by_id(self):
        a = simple_transfer("x", "y", 1, tx_id="same")
        b = simple_transfer("x", "y", 2, tx_id="same")
        assert a == b
        assert len({a, b}) == 1

    def test_digest_differs_across_content(self):
        a = simple_transfer("x", "y", 1, tx_id="t1")
        b = simple_transfer("x", "y", 2, tx_id="t2")
        assert a.digest != b.digest

    def test_decrement_and_increment_operation_selectors(self):
        tx = payment({"alice": 3, "bob": 4}, {"carol": 7})
        assert {op.key for op in tx.decrement_operations()} == {"alice", "bob"}
        assert {op.key for op in tx.increment_operations()} == {"carol"}

    def test_contract_with_two_callers_lists_both_payers(self):
        tx = contract_call({"alice": 1, "bob": 1}, {"slot": 9})
        assert tx.payers() == ["alice", "bob"]

    def test_transaction_requires_operations_tuple(self):
        tx = Transaction(
            tx_id="t",
            operations=(ObjectOperation("a", OperationKind.DECREMENT, 1),),
            tx_type=TransactionType.PAYMENT,
        )
        assert isinstance(tx.operations, tuple)

    def test_unbalanced_payment_detectable(self):
        tx = payment({"alice": 5}, {"bob": 4})
        assert tx.total_debit() != tx.total_credit()
