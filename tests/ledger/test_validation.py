"""Tests for transaction and block validation."""

import pytest

from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import sign
from repro.errors import ValidationError
from repro.ledger.blocks import Block, SystemState
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.transactions import (
    Transaction,
    TransactionType,
    contract_call,
    payment,
    simple_transfer,
)
from repro.ledger.validation import BlockValidator, TransactionValidator


class TestTransactionValidator:
    def test_valid_payment_passes(self):
        report = TransactionValidator().validate(simple_transfer("a", "b", 5))
        assert report.valid
        assert report.errors == []

    def test_valid_contract_passes(self):
        report = TransactionValidator().validate(contract_call({"a": 1}, {"s": 2}))
        assert report.valid

    def test_empty_operations_rejected(self):
        tx = Transaction(tx_id="t", operations=(), tx_type=TransactionType.PAYMENT)
        report = TransactionValidator().validate(tx)
        assert not report.valid

    def test_missing_owned_object_rejected(self):
        tx = Transaction(
            tx_id="t",
            operations=(
                ObjectOperation("s", OperationKind.ASSIGN, 1, ObjectType.SHARED),
            ),
            tx_type=TransactionType.CONTRACT,
        )
        report = TransactionValidator().validate(tx)
        assert not report.valid

    def test_negative_amount_rejected(self):
        tx = payment({"a": -5}, {"b": -5})
        report = TransactionValidator().validate(tx)
        assert not report.valid

    def test_unbalanced_payment_rejected_by_default(self):
        report = TransactionValidator().validate(payment({"a": 5}, {"b": 3}))
        assert not report.valid

    def test_unbalanced_payment_allowed_when_disabled(self):
        validator = TransactionValidator(require_balanced_payments=False)
        assert validator.validate(payment({"a": 5}, {"b": 3})).valid

    def test_payment_touching_shared_object_rejected(self):
        tx = Transaction(
            tx_id="t",
            operations=(
                ObjectOperation("a", OperationKind.DECREMENT, 1),
                ObjectOperation("s", OperationKind.INCREMENT, 1, ObjectType.SHARED),
            ),
            tx_type=TransactionType.PAYMENT,
        )
        assert not TransactionValidator().validate(tx).valid

    def test_report_require_raises(self):
        report = TransactionValidator().validate(payment({"a": 5}, {"b": 3}))
        with pytest.raises(ValidationError):
            report.require()

    def test_signature_checking(self):
        pki = PublicKeyInfrastructure(seed=1)
        keypair = pki.enroll("alice")
        tx = simple_transfer("alice", "bob", 5)
        unsigned_report = TransactionValidator(pki, require_signatures=True).validate(tx)
        assert not unsigned_report.valid
        signed = Transaction(
            tx_id=tx.tx_id,
            operations=tx.operations,
            tx_type=tx.tx_type,
            signatures={"alice": sign(keypair, tx)},
        )
        signed_report = TransactionValidator(pki, require_signatures=True).validate(signed)
        assert signed_report.valid


class TestBlockValidator:
    def _block(self, txs, instance=0, sn=0):
        return Block.create(
            instance=instance,
            sequence_number=sn,
            transactions=txs,
            state=SystemState.initial(2),
            proposer=0,
        )

    def test_valid_block_passes(self):
        block = self._block([simple_transfer("a", "b", 1)])
        assert BlockValidator().validate(block).valid

    def test_duplicate_transactions_rejected(self):
        tx = simple_transfer("a", "b", 1, tx_id="dup")
        block = self._block([tx, tx])
        assert not BlockValidator().validate(block).valid

    def test_negative_sequence_number_rejected(self):
        block = self._block([simple_transfer("a", "b", 1)], sn=-1)
        assert not BlockValidator().validate(block).valid

    def test_instance_mismatch_detected(self):
        block = self._block([simple_transfer("a", "b", 1)], instance=2)
        report = BlockValidator().validate(block, expected_instance=1)
        assert not report.valid

    def test_invalid_transaction_inside_block_detected(self):
        block = self._block([payment({"a": 5}, {"b": 3})])
        report = BlockValidator().validate(block)
        assert not report.valid
        assert any("unbalanced" in message for message in report.errors)
