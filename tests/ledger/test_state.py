"""Tests for the replicated state store."""

import pytest

from repro.errors import InsufficientFundsError, UnknownObjectError
from repro.ledger.objects import ObjectType
from repro.ledger.state import StateStore


class TestPopulation:
    def test_create_account_and_lookup(self):
        store = StateStore()
        store.create_account("alice", 10)
        assert store.balance_of("alice") == 10
        assert "alice" in store
        assert len(store) == 1

    def test_load_accounts_bulk(self):
        store = StateStore()
        store.load_accounts({"a": 1, "b": 2})
        assert store.balance_of("a") == 1
        assert store.balance_of("b") == 2

    def test_get_or_create_owned_and_shared(self):
        store = StateStore()
        owned = store.get_or_create("acct", ObjectType.OWNED)
        shared = store.get_or_create("slot", ObjectType.SHARED)
        assert owned.object_type is ObjectType.OWNED
        assert shared.object_type is ObjectType.SHARED

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownObjectError):
            StateStore().get("ghost")

    def test_total_owned_value_excludes_shared(self):
        store = StateStore()
        store.create_account("a", 5)
        store.create_shared("s", 100)
        assert store.total_owned_value() == 5


class TestMutation:
    def test_credit_and_debit(self):
        store = StateStore()
        store.create_account("alice", 10)
        assert store.credit("alice", 5) == 15
        assert store.debit("alice", 7) == 8

    def test_debit_below_condition_raises(self):
        store = StateStore()
        store.create_account("alice", 3)
        with pytest.raises(InsufficientFundsError):
            store.debit("alice", 4)
        assert store.balance_of("alice") == 3

    def test_can_debit_checks_without_mutation(self):
        store = StateStore()
        store.create_account("alice", 3)
        assert store.can_debit("alice", 3)
        assert not store.can_debit("alice", 4)
        assert store.balance_of("alice") == 3

    def test_assign_overwrites_value(self):
        store = StateStore()
        store.create_shared("slot", 1)
        assert store.assign("slot", 99) == 99

    def test_version_increments_on_mutation(self):
        store = StateStore()
        store.create_account("alice", 10)
        store.credit("alice", 1)
        store.debit("alice", 1)
        assert store.get("alice").version == 2

    def test_shared_objects_can_go_negative(self):
        store = StateStore()
        store.create_shared("pool", 5)
        assert store.debit("pool", 100) == -95


class TestSnapshots:
    def test_snapshot_selected_keys(self):
        store = StateStore()
        store.load_accounts({"a": 1, "b": 2, "c": 3})
        assert store.snapshot(["a", "c"]) == {"a": 1, "c": 3}

    def test_state_digest_reflects_contents(self):
        store_a = StateStore()
        store_b = StateStore()
        for store in (store_a, store_b):
            store.load_accounts({"a": 1, "b": 2})
        assert store_a.state_digest() == store_b.state_digest()
        store_b.credit("a", 1)
        assert store_a.state_digest() != store_b.state_digest()

    def test_copy_is_independent(self):
        store = StateStore()
        store.create_account("alice", 10)
        clone = store.copy()
        clone.credit("alice", 5)
        assert store.balance_of("alice") == 10
        assert clone.balance_of("alice") == 15

    def test_keys_iteration(self):
        store = StateStore()
        store.load_accounts({"a": 1, "b": 2})
        assert sorted(store.keys()) == ["a", "b"]
