"""Tests for the object-centric data model."""

from repro.ledger.objects import (
    ObjectOperation,
    ObjectType,
    OperationKind,
    owned_account,
    shared_record,
)


class TestObjectOperation:
    def test_owned_decrement_flags(self):
        op = ObjectOperation("alice", OperationKind.DECREMENT, 5, ObjectType.OWNED)
        assert op.is_decrement
        assert op.is_owned_decrement
        assert op.is_commutative
        assert not op.is_increment

    def test_shared_decrement_is_not_owned_decrement(self):
        op = ObjectOperation("pool", OperationKind.DECREMENT, 5, ObjectType.SHARED)
        assert op.is_decrement
        assert not op.is_owned_decrement

    def test_assign_is_not_commutative(self):
        op = ObjectOperation("slot", OperationKind.ASSIGN, 7, ObjectType.SHARED)
        assert not op.is_commutative

    def test_increment_flags(self):
        op = ObjectOperation("bob", OperationKind.INCREMENT, 3)
        assert op.is_increment
        assert not op.is_decrement
        assert op.is_commutative

    def test_digest_fields_round_trip(self):
        op = ObjectOperation("bob", OperationKind.INCREMENT, 3)
        fields = op.digest_fields()
        assert fields["key"] == "bob"
        assert fields["kind"] == "increment"
        assert fields["amount"] == 3

    def test_operations_are_hashable_and_frozen(self):
        op1 = ObjectOperation("a", OperationKind.INCREMENT, 1)
        op2 = ObjectOperation("a", OperationKind.INCREMENT, 1)
        assert op1 == op2
        assert len({op1, op2}) == 1


class TestLedgerObject:
    def test_owned_account_condition(self):
        account = owned_account("alice", 10)
        assert account.satisfies_condition(0)
        assert not account.satisfies_condition(-1)
        assert account.object_type is ObjectType.OWNED

    def test_shared_record_allows_negative_values(self):
        record = shared_record("slot", 0)
        assert record.satisfies_condition(-1000)
        assert record.object_type is ObjectType.SHARED

    def test_digest_fields_include_value_and_condition(self):
        account = owned_account("alice", 10)
        fields = account.digest_fields()
        assert fields["value"] == 10
        assert fields["condition"] == 0
