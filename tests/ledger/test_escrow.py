"""Tests for the escrow mechanism (Algorithm 2)."""

import pytest

from repro.errors import EscrowError
from repro.ledger.escrow import EscrowLog
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.state import StateStore
from repro.ledger.transactions import contract_call, payment, simple_transfer


def build_store(balances=None):
    store = StateStore()
    store.load_accounts(balances or {"alice": 10, "bob": 5, "carol": 0})
    return store


def op_of(tx, key):
    return next(op for op in tx.decrement_operations() if op.key == key)


class TestEscrowPrimitive:
    def test_successful_escrow_reserves_funds(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 4)
        result = elog.escrow(op_of(tx, "alice"), tx)
        assert result.success
        assert store.balance_of("alice") == 6
        assert elog.is_escrowed("alice", tx)
        assert elog.pending_amount("alice") == 4

    def test_escrow_fails_when_condition_violated(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 11)
        result = elog.escrow(op_of(tx, "alice"), tx)
        assert not result.success
        assert store.balance_of("alice") == 10
        assert len(elog) == 0
        assert elog.escrows_failed == 1

    def test_duplicate_escrow_is_idempotent(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 4)
        elog.escrow(op_of(tx, "alice"), tx)
        again = elog.escrow(op_of(tx, "alice"), tx)
        assert again.success
        assert store.balance_of("alice") == 6
        assert len(elog) == 1

    def test_escrow_rejects_non_decrement_operations(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 4)
        credit = next(op for op in tx.increment_operations())
        with pytest.raises(EscrowError):
            elog.escrow(credit, tx)

    def test_escrow_rejects_shared_decrement(self):
        store = build_store()
        store.create_shared("pool", 100)
        elog = EscrowLog(store)
        op = ObjectOperation("pool", OperationKind.DECREMENT, 1, ObjectType.SHARED)
        tx = contract_call({"alice": 1}, {"pool": 0})
        with pytest.raises(EscrowError):
            elog.escrow(op, tx)


class TestAllEscrowed:
    def test_all_escrowed_for_single_payer(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 4)
        assert not elog.all_escrowed(tx)
        elog.escrow(op_of(tx, "alice"), tx)
        assert elog.all_escrowed(tx)

    def test_all_escrowed_for_multi_payer(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = payment({"alice": 2, "bob": 3}, {"carol": 5})
        elog.escrow(op_of(tx, "alice"), tx)
        assert not elog.all_escrowed(tx)
        elog.escrow(op_of(tx, "bob"), tx)
        assert elog.all_escrowed(tx)

    def test_transaction_without_decrements_is_trivially_escrowed(self):
        store = build_store()
        elog = EscrowLog(store)
        mint = payment({}, {"carol": 5})
        assert elog.all_escrowed(mint)


class TestCommitAndAbort:
    def test_commit_makes_reservation_permanent(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 4)
        elog.escrow(op_of(tx, "alice"), tx)
        removed = elog.commit_escrow(tx)
        assert removed == 1
        assert store.balance_of("alice") == 6
        assert len(elog) == 0

    def test_abort_refunds_all_payers(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = payment({"alice": 2, "bob": 3}, {"carol": 5})
        elog.escrow(op_of(tx, "alice"), tx)
        elog.escrow(op_of(tx, "bob"), tx)
        refunded = elog.abort_escrow(tx)
        assert refunded == 2
        assert store.balance_of("alice") == 10
        assert store.balance_of("bob") == 5
        assert len(elog) == 0

    def test_abort_without_entries_is_noop(self):
        store = build_store()
        elog = EscrowLog(store)
        tx = simple_transfer("alice", "carol", 4)
        assert elog.abort_escrow(tx) == 0

    def test_commit_only_affects_target_transaction(self):
        store = build_store()
        elog = EscrowLog(store)
        tx1 = simple_transfer("alice", "carol", 2, tx_id="t1")
        tx2 = simple_transfer("alice", "carol", 3, tx_id="t2")
        elog.escrow(op_of(tx1, "alice"), tx1)
        elog.escrow(op_of(tx2, "alice"), tx2)
        elog.commit_escrow(tx1)
        assert not elog.is_escrowed("alice", tx1)
        assert elog.is_escrowed("alice", tx2)
        assert store.balance_of("alice") == 5

    def test_total_reserved_tracks_outstanding_amounts(self):
        store = build_store()
        elog = EscrowLog(store)
        tx1 = simple_transfer("alice", "carol", 2, tx_id="t1")
        tx2 = simple_transfer("bob", "carol", 3, tx_id="t2")
        elog.escrow(op_of(tx1, "alice"), tx1)
        elog.escrow(op_of(tx2, "bob"), tx2)
        assert elog.total_reserved() == 5
        elog.abort_escrow(tx1)
        assert elog.total_reserved() == 3


class TestPaperScenarios:
    """The escrow-mechanism scenarios described in Sec. II-A and Appendix B."""

    def test_concurrent_escrows_on_same_account_respect_balance(self):
        # Alice has 4; tx1 escrows 2, tx3 escrows 2 -> both fit; a third fails.
        store = build_store({"alice": 4, "bob": 0, "carol": 0})
        elog = EscrowLog(store)
        tx1 = simple_transfer("alice", "carol", 2, tx_id="tx1")
        tx3 = simple_transfer("alice", "bob", 2, tx_id="tx3")
        tx4 = simple_transfer("alice", "bob", 1, tx_id="tx4")
        assert elog.escrow(op_of(tx1, "alice"), tx1).success
        assert elog.escrow(op_of(tx3, "alice"), tx3).success
        assert not elog.escrow(op_of(tx4, "alice"), tx4).success

    def test_contract_escrow_does_not_block_subsequent_payment(self):
        # Solution-II: a pending contract call escrows funds so later payments
        # are evaluated as if the contract had already executed.
        store = build_store({"alice": 5, "bob": 0, "carol": 0})
        elog = EscrowLog(store)
        contract = contract_call({"alice": 3}, {"slot": 1}, tx_id="ctx")
        elog.escrow(op_of(contract, "alice"), contract)
        payment_tx = simple_transfer("alice", "bob", 2, tx_id="pay")
        assert elog.escrow(op_of(payment_tx, "alice"), payment_tx).success
        # Contract later fails -> refund restores exactly the escrowed amount.
        elog.abort_escrow(contract)
        assert store.balance_of("alice") == 3
