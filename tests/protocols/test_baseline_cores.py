"""Tests for the baseline protocol cores and the registry."""

import pytest

from repro.core.config import CoreConfig
from repro.core.orthrus import OrthrusCore
from repro.core.outcomes import ConfirmationPath, TxStatus
from repro.errors import ConfigurationError
from repro.ledger.blocks import Block, SystemState
from repro.ledger.state import StateStore
from repro.ledger.transactions import contract_call, simple_transfer
from repro.protocols.dqbft import DQBFTCore
from repro.protocols.iss import ISSCore
from repro.protocols.ladon import LadonCore
from repro.protocols.mirbft import MirBFTCore
from repro.protocols.rcc import RCCCore
from repro.protocols.registry import PROTOCOL_NAMES, available_protocols, build_core


def make_core(cls, num_instances=2, balances=None):
    config = CoreConfig(num_instances=num_instances, batch_size=8, epoch_length=1000)
    store = StateStore()
    store.load_accounts(balances or {"alice": 100, "bob": 50, "carol": 0})
    store.create_shared("slot", 0)
    return cls(config, store)


def deliver(core, instance, sn, txs, rank=None):
    block = Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=txs,
        state=SystemState.initial(core.config.num_instances),
        proposer=instance,
        rank=rank,
    )
    return core.on_block_delivered(block)


class TestRegistry:
    def test_all_paper_protocols_available(self):
        assert set(available_protocols()) == {
            "orthrus",
            "iss",
            "rcc",
            "mir",
            "dqbft",
            "ladon",
            "orthrus-dep",
        }
        # Figures and reports keep iterating the paper's six only.
        assert set(PROTOCOL_NAMES) == {"orthrus", "iss", "rcc", "mir", "dqbft", "ladon"}

    def test_build_core_returns_expected_types(self):
        config = CoreConfig(num_instances=4)
        expected = {
            "orthrus": OrthrusCore,
            "iss": ISSCore,
            "rcc": RCCCore,
            "mir": MirBFTCore,
            "dqbft": DQBFTCore,
            "ladon": LadonCore,
        }
        for name, cls in expected.items():
            assert isinstance(build_core(name, config), cls)

    def test_build_core_is_case_insensitive(self):
        assert isinstance(build_core("ISS", CoreConfig(num_instances=2)), ISSCore)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            build_core("pbft-classic", CoreConfig(num_instances=2))

    def test_names_are_unique(self):
        names = [
            build_core(n, CoreConfig(num_instances=2)).name for n in available_protocols()
        ]
        assert len(set(names)) == len(names)

    def test_orthrus_dep_core_uses_dependency_orderer(self):
        core = build_core("orthrus-dep", CoreConfig(num_instances=2))
        assert core.name == "orthrus-dep"
        assert core.global_orderer.wants_conflicts
        assert core.global_orderer.conflict_graph_size() == 0


class TestPredeterminedCores:
    def test_iss_executes_only_in_global_order(self):
        core = make_core(ISSCore)
        tx = simple_transfer("bob", "carol", 10, tx_id="p")
        # Instance 1 delivers first, but global position (0*2+1) waits for
        # instance 0's block at position 0.
        outcomes = deliver(core, 1, 0, [tx])
        assert outcomes == []
        assert core.store.balance_of("bob") == 50
        outcomes = deliver(core, 0, 0, [])
        assert len(outcomes) == 1
        assert outcomes[0].status is TxStatus.COMMITTED
        assert outcomes[0].path is ConfirmationPath.GLOBAL
        assert core.store.balance_of("carol") == 10

    def test_traits_match_paper_descriptions(self):
        assert ISSCore(CoreConfig(num_instances=2)).predetermined_ordering
        assert ISSCore(CoreConfig(num_instances=2)).fills_gaps_with_noops
        assert MirBFTCore(CoreConfig(num_instances=2)).epoch_change_on_fault
        assert not LadonCore(CoreConfig(num_instances=2)).predetermined_ordering
        assert RCCCore(CoreConfig(num_instances=2)).fast_recovery
        assert DQBFTCore(CoreConfig(num_instances=2)).uses_sequencer

    def test_insufficient_funds_rejected_without_partial_effects(self):
        core = make_core(ISSCore, balances={"alice": 5, "bob": 0, "carol": 0})
        tx = simple_transfer("alice", "carol", 10, tx_id="p")
        deliver(core, 1, 0, [tx]) if core.partitioner.buckets_for(tx) == [1] else None
        outcomes = deliver(core, 0, 0, [tx]) + deliver(core, 1, 0, [])
        rejected = [o for o in outcomes if o.tx.tx_id == "p"]
        assert rejected and rejected[0].status is TxStatus.REJECTED
        assert core.store.balance_of("alice") == 5
        assert core.store.balance_of("carol") == 0

    def test_contract_execution_applies_shared_effects(self):
        core = make_core(RCCCore)
        ctx = contract_call({"alice": 10}, {"slot": 42}, tx_id="c")
        deliver(core, 0, 0, [ctx])
        deliver(core, 1, 0, [])
        assert core.store.balance_of("slot") == 42
        assert core.store.balance_of("alice") == 90


class TestLadonCore:
    def test_execution_follows_rank_order(self):
        core = make_core(LadonCore)
        tx_late = simple_transfer("alice", "carol", 1, tx_id="late")
        tx_early = simple_transfer("bob", "carol", 1, tx_id="early")
        # Higher-rank block delivered first: it must wait for the lower rank.
        assert deliver(core, 1, 0, [tx_late], rank=5) == []
        outcomes = deliver(core, 0, 0, [tx_early], rank=1)
        confirmed_ids = [o.tx.tx_id for o in outcomes]
        assert confirmed_ids == ["early"]
        # Once every instance advances past rank 5 the late block executes.
        outcomes = deliver(core, 0, 1, [], rank=6)
        assert [o.tx.tx_id for o in outcomes] == ["late"]

    def test_uses_ranks_flag(self):
        assert LadonCore(CoreConfig(num_instances=2)).uses_ranks
        assert not ISSCore(CoreConfig(num_instances=2)).uses_ranks


class TestDQBFTCore:
    def test_execution_waits_for_sequencer_decision(self):
        core = make_core(DQBFTCore)
        tx = simple_transfer("alice", "carol", 5, tx_id="p")
        assert deliver(core, 0, 0, [tx]) == []
        outcomes = core.on_sequencer_decision([(0, 0)])
        assert [o.tx.tx_id for o in outcomes] == ["p"]
        assert core.store.balance_of("carol") == 5

    def test_decision_before_delivery_is_buffered(self):
        core = make_core(DQBFTCore)
        tx = simple_transfer("alice", "carol", 5, tx_id="p")
        assert core.on_sequencer_decision([(0, 0)]) == []
        outcomes = deliver(core, 0, 0, [tx])
        assert [o.tx.tx_id for o in outcomes] == ["p"]


class TestCommonCoreBehaviour:
    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_submit_and_pull_round_trip(self, name):
        config = CoreConfig(num_instances=4, batch_size=8)
        core = build_core(name, config)
        core.store.create_account("alice", 100)
        core.store.create_account("bob", 0)
        tx = simple_transfer("alice", "bob", 1, tx_id=f"{name}-tx")
        buckets = core.submit(tx)
        assert buckets
        pulled = core.pull_batch(buckets[0])
        assert tx in pulled

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_duplicate_submit_not_requeued(self, name):
        config = CoreConfig(num_instances=4, batch_size=8)
        core = build_core(name, config)
        core.store.create_account("alice", 100)
        core.store.create_account("bob", 0)
        tx = simple_transfer("alice", "bob", 1, tx_id=f"{name}-dup")
        first = core.submit(tx)
        second = core.submit(tx)
        assert first
        assert second == []

    def test_requeue_restores_transactions(self):
        core = make_core(ISSCore)
        core.store.create_account("dave", 10)
        tx = simple_transfer("dave", "carol", 1, tx_id="rq")
        buckets = core.submit(tx)
        instance = buckets[0]
        pulled = core.pull_batch(instance)
        assert core.bucket_size(instance) == 0
        core.requeue(instance, pulled)
        assert core.bucket_size(instance) == 1

    def test_delivered_state_tracks_frontier(self):
        core = make_core(ISSCore)
        assert core.delivered_state().sequence_numbers == (-1, -1)
        deliver(core, 0, 0, [])
        deliver(core, 1, 0, [])
        deliver(core, 1, 1, [])
        assert core.delivered_state().sequence_numbers == (0, 1)
