"""Tests for the quorum-latency (instance fidelity) consensus model."""

import pytest

from repro.net.latency import BandwidthModel, LANLatencyModel, WANLatencyModel
from repro.sb.quorum.model import QuorumLatencyConfig, QuorumLatencyModel
from repro.sim.rng import DeterministicRNG


def build(num_replicas=16, environment="wan", **kwargs):
    latency = WANLatencyModel() if environment == "wan" else LANLatencyModel()
    return QuorumLatencyModel(
        num_replicas=num_replicas,
        latency_model=latency,
        bandwidth_model=BandwidthModel(),
        rng=DeterministicRNG(1),
        **kwargs,
    )


class TestConstruction:
    def test_rejects_tiny_clusters(self):
        with pytest.raises(ValueError):
            build(num_replicas=3)

    def test_quorum_is_two_thirds(self):
        model = build(num_replicas=16)
        assert model.fault_tolerance == 5
        assert model.quorum == 11


class TestComponents:
    def test_dissemination_scales_with_size_and_slowdown(self):
        model = build()
        small = model.dissemination_delay(0, 100_000)
        large = model.dissemination_delay(0, 1_000_000)
        slow = model.dissemination_delay(0, 100_000, slowdown=10.0)
        assert large > small
        assert slow == pytest.approx(small * 10.0)

    def test_quorum_round_positive_in_wan(self):
        model = build()
        delay = model.quorum_round_delay(0)
        assert delay > 0.01

    def test_lan_quorum_round_much_faster_than_wan(self):
        wan = build(environment="wan").quorum_round_delay(0)
        lan = build(environment="lan").quorum_round_delay(0)
        assert lan < wan / 10

    def test_abstention_pushes_quorum_to_slower_replicas(self):
        model = build(num_replicas=16)
        baseline = sum(model.quorum_round_delay(0) for _ in range(50)) / 50
        degraded_model = build(num_replicas=16)
        degraded = sum(
            degraded_model.quorum_round_delay(0, abstaining=5) for _ in range(50)
        ) / 50
        assert degraded >= baseline

    def test_processing_delay_scales_with_batch(self):
        model = build()
        assert model.processing_delay(4096) > model.processing_delay(64)
        assert model.processing_delay(0) == pytest.approx(
            model.config.per_block_cpu
        )


class TestHeadlineLatency:
    def test_delivery_latency_combines_components(self):
        model = build()
        latency = model.delivery_latency(0, 2_000_000, 4096)
        assert latency > model.dissemination_delay(0, 2_000_000)
        assert latency > model.processing_delay(4096)

    def test_straggler_slowdown_dominates(self):
        model = build()
        healthy = model.delivery_latency(0, 2_000_000, 4096)
        degraded = model.delivery_latency(0, 2_000_000, 4096, slowdown=10.0)
        assert degraded > healthy * 5

    def test_leader_occupancy_bounds_block_rate(self):
        model = build(num_replicas=128)
        occupancy = model.leader_occupancy(2_000_000, 4096)
        # 2 MB to 127 peers at 1 Gbps is ~2 s of uplink time.
        assert occupancy == pytest.approx(2.0, rel=0.2)

    def test_occupancy_cpu_bound_for_small_clusters(self):
        model = build(num_replicas=8)
        occupancy = model.leader_occupancy(2_000_000, 4096)
        assert occupancy == pytest.approx(model.processing_delay(4096), rel=0.3)

    def test_custom_config_round_count(self):
        model = QuorumLatencyModel(
            num_replicas=8,
            latency_model=WANLatencyModel(),
            config=QuorumLatencyConfig(voting_phases=0, per_tx_cpu=0.0, per_block_cpu=0.0),
            rng=DeterministicRNG(0),
        )
        latency = model.delivery_latency(0, 0, 0)
        assert latency == pytest.approx(0.0, abs=1e-9)
