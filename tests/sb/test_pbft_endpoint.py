"""Unit tests for the PBFT endpoint using an in-memory loopback transport.

Four endpoints (one per replica) for a single instance are wired through a
:class:`LoopbackFabric` that delivers messages synchronously, which keeps the
state machine tests fast and deterministic without the full simulator.
"""

import pytest

from repro.errors import NotLeaderError
from repro.ledger.blocks import Block, SystemState
from repro.ledger.transactions import simple_transfer
from repro.sb.pbft.endpoint import PBFTConfig, PBFTEndpoint
from repro.sb.pbft.messages import PrePrepare


class FakeTimer:
    def __init__(self):
        self.active = True
        self.fired = False

    def cancel(self):
        self.active = False


class LoopbackFabric:
    """Synchronous message fabric connecting the test endpoints."""

    def __init__(self, num_replicas, drop_from=None):
        self.num_replicas = num_replicas
        self.endpoints = {}
        self.drop_from = set(drop_from or [])
        self.timers = []
        self.clock = 0.0

    def transport_for(self, replica_id):
        fabric = self

        class Transport:
            def send(self, destination, message):
                if replica_id in fabric.drop_from:
                    return
                endpoint = fabric.endpoints.get(destination)
                if endpoint is not None:
                    endpoint.handle_message(replica_id, message)

            def broadcast(self, message, include_self=False):
                if replica_id in fabric.drop_from:
                    return
                for other_id, endpoint in fabric.endpoints.items():
                    if other_id == replica_id and not include_self:
                        continue
                    endpoint.handle_message(replica_id, message)

            def set_timer(self, delay, callback):
                timer = FakeTimer()
                fabric.timers.append((timer, callback))
                return timer

            def now(self):
                return fabric.clock

        return Transport()

    def fire_timers(self):
        pending = list(self.timers)
        self.timers.clear()
        for timer, callback in pending:
            if timer.active:
                timer.fired = True
                callback()


def build_group(num_replicas=4, instance=0, drop_from=None, config=None):
    fabric = LoopbackFabric(num_replicas, drop_from=drop_from)
    delivered = {replica: [] for replica in range(num_replicas)}
    for replica in range(num_replicas):
        endpoint = PBFTEndpoint(
            instance_id=instance,
            replica_id=replica,
            num_replicas=num_replicas,
            transport=fabric.transport_for(replica),
            config=config or PBFTConfig(view_change_timeout=1.0),
        )
        endpoint.on_deliver(
            lambda block, replica=replica: delivered[replica].append(block)
        )
        fabric.endpoints[replica] = endpoint
    return fabric, delivered


def make_block(sn, instance=0, tx_id=None):
    return Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=[simple_transfer("a", "b", 1, tx_id=tx_id or f"tx-{sn}")],
        state=SystemState.initial(1),
        proposer=instance,
    )


class TestNormalCase:
    def test_leader_is_instance_index_in_view_zero(self):
        fabric, _ = build_group(instance=2)
        assert fabric.endpoints[0].leader() == 2
        assert fabric.endpoints[2].is_leader()

    def test_broadcast_block_delivers_everywhere(self):
        fabric, delivered = build_group(instance=0)
        fabric.endpoints[0].broadcast_block(make_block(0))
        assert all(len(blocks) == 1 for blocks in delivered.values())
        digests = {blocks[0].digest for blocks in delivered.values()}
        assert len(digests) == 1

    def test_non_leader_cannot_broadcast(self):
        fabric, _ = build_group(instance=0)
        with pytest.raises(NotLeaderError):
            fabric.endpoints[1].broadcast_block(make_block(0))

    def test_delivery_in_sequence_order_despite_out_of_order_commits(self):
        fabric, delivered = build_group(instance=0)
        leader = fabric.endpoints[0]
        leader.broadcast_block(make_block(0))
        leader.broadcast_block(make_block(1))
        leader.broadcast_block(make_block(2))
        for blocks in delivered.values():
            assert [b.sequence_number for b in blocks] == [0, 1, 2]

    def test_duplicate_pre_prepare_does_not_double_deliver(self):
        fabric, delivered = build_group(instance=0)
        leader = fabric.endpoints[0]
        block = make_block(0)
        leader.broadcast_block(block)
        duplicate = PrePrepare(
            instance=0,
            view=0,
            sender=0,
            sequence_number=0,
            block=block,
            digest=block.digest,
        )
        fabric.endpoints[1].handle_message(0, duplicate)
        assert len(delivered[1]) == 1

    def test_message_for_other_instance_ignored(self):
        fabric, delivered = build_group(instance=0)
        foreign = PrePrepare(
            instance=5,
            view=0,
            sender=0,
            sequence_number=0,
            block=make_block(0, instance=5),
            digest="x",
        )
        fabric.endpoints[1].handle_message(0, foreign)
        assert delivered[1] == []

    def test_pre_prepare_from_non_leader_ignored(self):
        fabric, delivered = build_group(instance=0)
        block = make_block(0)
        forged = PrePrepare(
            instance=0,
            view=0,
            sender=2,
            sequence_number=0,
            block=block,
            digest=block.digest,
        )
        for endpoint in fabric.endpoints.values():
            endpoint.handle_message(2, forged)
        assert all(blocks == [] for blocks in delivered.values())

    def test_blocks_delivered_counter(self):
        fabric, _ = build_group(instance=0)
        fabric.endpoints[0].broadcast_block(make_block(0))
        assert fabric.endpoints[3].blocks_delivered == 1


class TestFailureDetectorAndViewChange:
    def test_timeout_triggers_view_change_to_next_leader(self):
        # Replica 0 (the leader) is silent; backups detect the lack of
        # progress and rotate leadership to replica 1.
        fabric, delivered = build_group(instance=0, drop_from=[0])
        for replica in (1, 2, 3):
            fabric.endpoints[replica].notify_pending_work()
        fabric.fire_timers()
        for replica in (1, 2, 3):
            assert fabric.endpoints[replica].view == 1
            assert fabric.endpoints[replica].leader() == 1
            assert fabric.endpoints[replica].view_changes_completed == 1

    def test_new_leader_reproposes_pending_blocks(self):
        fabric, delivered = build_group(instance=0)
        leader = fabric.endpoints[0]
        block = make_block(0)
        # The leader pre-prepares but its commit-phase messages are lost:
        # simulate by delivering the pre-prepare only to replicas 1-3 and then
        # silencing the leader.
        pre_prepare = PrePrepare(
            instance=0,
            view=0,
            sender=0,
            sequence_number=0,
            block=block,
            digest=block.digest,
        )
        fabric.drop_from.add(0)
        for replica in (1, 2, 3):
            fabric.endpoints[replica].handle_message(0, pre_prepare)
        # No quorum of commits is possible without the leader... the slot is
        # stuck until the failure detector rotates the leader, which
        # re-proposes the pending block in the new view.
        for replica in (1, 2, 3):
            fabric.endpoints[replica].notify_pending_work()
        fabric.fire_timers()
        for replica in (1, 2, 3):
            assert [b.digest for b in delivered[replica]] == [block.digest]

    def test_delivery_resets_failure_detector(self):
        fabric, _ = build_group(instance=0)
        backup = fabric.endpoints[1]
        backup.notify_pending_work()
        fabric.endpoints[0].broadcast_block(make_block(0))
        # The timer was cancelled by the delivery, so firing it is a no-op.
        fabric.fire_timers()
        assert backup.view == 0

    def test_progress_after_view_change(self):
        fabric, delivered = build_group(instance=0, drop_from=[0])
        for replica in (1, 2, 3):
            fabric.endpoints[replica].notify_pending_work()
        fabric.fire_timers()
        new_leader = fabric.endpoints[1]
        assert new_leader.is_leader()
        fabric.drop_from.discard(0)
        new_leader.broadcast_block(make_block(0))
        for replica in (1, 2, 3):
            assert len(delivered[replica]) == 1

    def test_quorum_constant(self):
        fabric, _ = build_group(num_replicas=7)
        assert fabric.endpoints[0].fault_tolerance == 2
        assert fabric.endpoints[0].quorum == 5


class TestViewChangeHardening:
    def test_replica_without_armed_timer_joins_on_f_plus_one_votes(self):
        # Leader 0 is silent.  Only replicas 2 and 3 armed their failure
        # detectors (no client request reached replica 1), so without vote
        # joining the quorum of 3 could never form and the instance would
        # stall.  Seeing f + 1 = 2 votes, replica 1 must join — and it is
        # the view-1 leader, so it installs the new view.
        fabric, _ = build_group(instance=0, drop_from=[0])
        for replica in (2, 3):
            fabric.endpoints[replica].notify_pending_work()
        fabric.fire_timers()
        for replica in (1, 2, 3):
            assert fabric.endpoints[replica].view == 1
            assert fabric.endpoints[replica].view_changes_completed == 1

    def test_view_change_escalates_past_a_crashed_new_leader(self):
        # n = 7 (f = 2): replicas 0 and 1 are silent.  The first view change
        # targets view 1 whose leader (replica 1) is also dead, so no NewView
        # ever arrives; the escalation timer must push the vote to view 2,
        # whose leader (replica 2) is alive.
        fabric, _ = build_group(num_replicas=7, instance=0, drop_from=[0, 1])
        for replica in range(2, 7):
            fabric.endpoints[replica].notify_pending_work()
        fabric.fire_timers()  # progress timeouts: everyone votes view 1
        for replica in range(2, 7):
            assert fabric.endpoints[replica].view == 0  # stuck: leader 1 dead
        fabric.fire_timers()  # escalation timers: votes move to view 2
        for replica in range(2, 7):
            assert fabric.endpoints[replica].view == 2
            assert fabric.endpoints[replica].leader() == 2

    def test_new_view_resets_stale_votes_on_reproposed_slots(self):
        from repro.sb.pbft.messages import NewView

        fabric, _ = build_group(instance=0)
        endpoint = fabric.endpoints[2]
        old_block = make_block(0, tx_id="old")
        endpoint.handle_message(
            0,
            PrePrepare(
                instance=0, view=0, sender=0, sequence_number=0,
                block=old_block, digest=old_block.digest,
            ),
        )
        # Forge extra old-view prepares that never reached quorum.
        endpoint.slots.slot(0).record_prepare(9)
        assert 9 in endpoint.slots.slot(0).prepares

        new_block = make_block(0, tx_id="new")
        endpoint._handle_new_view(
            1,
            NewView(
                instance=0, view=1, sender=1,
                reproposals=((0, new_block),),
            ),
        )
        slot = endpoint.slots.slot(0)
        assert slot.digest == new_block.digest
        assert 9 not in slot.prepares  # old-view votes cannot count again

    def test_leader_callback_fires_after_reproposals_occupy_slots(self):
        # The new leader derives its next sequence number from
        # ``slots.highest_started()`` inside the callback; re-proposed slots
        # it never saw pre-prepared must already be present by then, or its
        # fresh proposals would collide with them.
        from repro.sb.pbft.messages import NewView

        fabric, _ = build_group(instance=0)
        endpoint = fabric.endpoints[1]  # leader of view 1
        observed = []
        endpoint.on_leader_change(
            lambda view, leader: observed.append(endpoint.slots.highest_started())
        )
        block = make_block(5, tx_id="unseen")
        endpoint._handle_new_view(
            1,
            NewView(instance=0, view=1, sender=1, reproposals=((5, block),)),
        )
        assert observed == [5]

    def test_timeout_with_no_remaining_work_does_not_change_view(self):
        # Execution happens above the endpoint, so the last delivery's
        # progress bookkeeping can run *before* its transactions turn
        # terminal — leaving a timer armed with nothing actually owed.  The
        # timeout must re-check the probe and disarm instead of spuriously
        # rotating the leader of a healthy idle instance.
        fabric, _ = build_group(instance=0)
        backup = fabric.endpoints[2]
        pending = {"value": True}
        backup.pending_work_probe = lambda: pending["value"]
        backup.notify_pending_work()
        pending["value"] = False  # work finished after the timer was armed
        fabric.fire_timers()
        assert backup.view == 0
        assert backup._voted_view == 0

        # With work genuinely owed, the same timer does start a view change.
        pending["value"] = True
        backup.notify_pending_work()
        fabric.fire_timers()
        assert backup._voted_view == 1
