"""Tests for PBFT slot bookkeeping."""

from repro.ledger.blocks import Block, SystemState
from repro.ledger.transactions import simple_transfer
from repro.sb.pbft.slots import SlotTable


def make_block(sn, instance=0):
    return Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=[simple_transfer("a", "b", 1)],
        state=SystemState.initial(1),
        proposer=0,
    )


class TestSlotTable:
    def test_slot_creation_on_demand(self):
        table = SlotTable()
        slot = table.slot(3)
        assert slot.sequence_number == 3
        assert 3 in table
        assert 4 not in table

    def test_vote_recording_counts_distinct_senders(self):
        table = SlotTable()
        slot = table.slot(0)
        assert slot.record_prepare(1) == 1
        assert slot.record_prepare(1) == 1
        assert slot.record_prepare(2) == 2
        assert slot.record_commit(1) == 1

    def test_delivery_requires_contiguous_committed_slots(self):
        table = SlotTable()
        for sn in (0, 1, 2):
            slot = table.slot(sn)
            slot.block = make_block(sn)
        table.slot(1).committed = True
        assert table.deliverable() == []
        table.slot(0).committed = True
        delivered = table.deliverable()
        assert [s.sequence_number for s in delivered] == [0, 1]
        assert table.next_to_deliver == 2

    def test_deliverable_is_idempotent(self):
        table = SlotTable()
        slot = table.slot(0)
        slot.block = make_block(0)
        slot.committed = True
        assert len(table.deliverable()) == 1
        assert table.deliverable() == []

    def test_undelivered_proposals_listed_in_order(self):
        table = SlotTable()
        for sn in (2, 0, 1):
            slot = table.slot(sn)
            slot.block = make_block(sn)
            slot.pre_prepared = True
        table.slot(0).committed = True
        table.deliverable()
        pending = table.undelivered_proposals()
        assert [sn for sn, _ in pending] == [1, 2]

    def test_highest_started(self):
        table = SlotTable()
        assert table.highest_started() == -1
        table.slot(5)
        assert table.highest_started() == 5

    def test_prune_below_removes_only_delivered(self):
        table = SlotTable()
        for sn in (0, 1):
            slot = table.slot(sn)
            slot.block = make_block(sn)
            slot.committed = True
        table.deliverable()
        table.slot(2).pre_prepared = True
        removed = table.prune_below(2)
        assert removed == 2
        assert 2 in table
