"""Tests for the analysis/comparison utilities."""

import pytest

from repro.analysis.comparison import (
    compare_latency,
    export_csv,
    latency_sparkline,
    metrics_to_row,
    partial_path_share,
    sparkline,
    straggler_sensitivity,
    summarize,
    throughput_sparkline,
)
from repro.metrics.latency import LatencySummary
from repro.metrics.summary import RunMetrics
from repro.metrics.throughput import ThroughputPoint


def make_metrics(throughput=1000.0, latency=2.0, partial=30, global_=70):
    summary = LatencySummary(count=100, mean=latency, median=latency, p95=latency * 2, maximum=latency * 3)
    return RunMetrics(
        duration=10.0,
        throughput_tps=throughput,
        latency=summary,
        confirmation_latency=summary,
        stage_breakdown={
            "send": 0.01,
            "preprocessing": 0.5,
            "partial_ordering": 0.5,
            "global_ordering": latency - 1.1,
            "reply": 0.09,
        },
        confirmed=partial + global_,
        committed=partial + global_,
        rejected=0,
        partial_path=partial,
        global_path=global_,
        series=[ThroughputPoint(i * 0.5, (i + 1) * 0.5, 10 + i) for i in range(8)],
        latency_series=[(i * 0.5, 1.0 + i * 0.1) for i in range(8)],
    )


class TestComparisons:
    def test_compare_latency_against_reference(self):
        results = {
            "orthrus": make_metrics(throughput=1000.0, latency=2.0),
            "iss": make_metrics(throughput=900.0, latency=6.0),
        }
        comparisons = compare_latency(results, "orthrus")
        assert len(comparisons) == 1
        comparison = comparisons[0]
        assert comparison.reference == "iss"
        assert comparison.latency_reduction == pytest.approx(2.0 / 3.0)
        assert comparison.latency_reduction_percent == pytest.approx(66.67, rel=1e-3)
        assert comparison.throughput_ratio == pytest.approx(1000.0 / 900.0)

    def test_compare_latency_requires_reference(self):
        with pytest.raises(KeyError):
            compare_latency({"iss": make_metrics()}, "orthrus")

    def test_straggler_sensitivity(self):
        clean = make_metrics(throughput=1000.0)
        degraded = make_metrics(throughput=100.0)
        assert straggler_sensitivity(clean, degraded) == pytest.approx(0.9)
        assert straggler_sensitivity(make_metrics(throughput=0.0), degraded) == 0.0

    def test_partial_path_share(self):
        assert partial_path_share(make_metrics(partial=30, global_=70)) == pytest.approx(0.3)
        empty = make_metrics(partial=0, global_=0)
        assert partial_path_share(empty) == 0.0


class TestExportAndDisplay:
    def test_metrics_to_row_and_csv(self):
        results = {"orthrus": make_metrics(), "iss": make_metrics(latency=5.0)}
        row = metrics_to_row("orthrus", results["orthrus"])
        assert row["label"] == "orthrus"
        assert "stage_global_ordering_s" in row
        csv_text = export_csv(results)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("label,")
        assert export_csv({}) == ""

    def test_sparkline_scaling(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "@"
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_sparkline_width_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_metric_sparklines(self):
        metrics = make_metrics()
        assert len(throughput_sparkline(metrics, width=8)) == 8
        assert len(latency_sparkline(metrics, width=8)) == 8

    def test_summarize_lists_every_run(self):
        text = summarize({"orthrus": make_metrics(), "iss": make_metrics()})
        assert "orthrus" in text
        assert "iss" in text
        assert "ktps" in text
