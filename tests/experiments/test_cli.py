"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_run_command_outputs_summary(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol",
                "orthrus",
                "--replicas",
                "8",
                "--duration",
                "12",
                "--warmup",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ktps" in captured
        assert "stage breakdown" in captured
        assert "global_ordering" in captured

    def test_run_command_csv_output(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol",
                "iss",
                "--replicas",
                "8",
                "--duration",
                "10",
                "--warmup",
                "2",
                "--csv",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        header = captured.splitlines()[0]
        assert header.startswith("label,")
        assert "iss" in captured

    def test_workload_command_reports_mix(self, capsys):
        exit_code = main(
            [
                "workload",
                "--transactions",
                "400",
                "--accounts",
                "500",
                "--payment-fraction",
                "0.5",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "payments" in captured
        assert "contract calls" in captured

    def test_figure_command_smoke_scale(self, capsys):
        exit_code = main(["figure", "fig8", "--scale", "smoke"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "faulty replicas" in captured

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "nonsense"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
