"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_run_command_outputs_summary(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol",
                "orthrus",
                "--replicas",
                "8",
                "--duration",
                "12",
                "--warmup",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ktps" in captured
        assert "stage breakdown" in captured
        assert "global_ordering" in captured

    def test_run_command_csv_output(self, capsys):
        exit_code = main(
            [
                "run",
                "--protocol",
                "iss",
                "--replicas",
                "8",
                "--duration",
                "10",
                "--warmup",
                "2",
                "--csv",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        header = captured.splitlines()[0]
        assert header.startswith("label,")
        assert "iss" in captured

    def test_workload_command_reports_mix(self, capsys):
        exit_code = main(
            [
                "workload",
                "--transactions",
                "400",
                "--accounts",
                "500",
                "--payment-fraction",
                "0.5",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "payments" in captured
        assert "contract calls" in captured

    def test_figure_command_smoke_scale(self, capsys):
        exit_code = main(["figure", "fig8", "--scale", "smoke"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "faulty replicas" in captured

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "nonsense"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_matches_package_metadata(self):
        """pyproject.toml and repro.__version__ must not drift apart."""
        import re
        from pathlib import Path

        import repro

        pyproject = (
            Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        ).read_text()
        declared = re.search(r'^version = "([^"]+)"', pyproject, re.MULTILINE)
        assert declared is not None
        assert declared.group(1) == repro.__version__

    def test_serve_rejects_bad_peers(self, capsys):
        exit_code = main(["serve", "--replica-id", "0", "--peers", "not-an-endpoint"])
        assert exit_code == 2
        assert "host:port" in capsys.readouterr().err

    def test_loadgen_rejects_bad_peers(self, capsys):
        exit_code = main(["loadgen", "--peers", "nope"])
        assert exit_code == 2
        assert "host:port" in capsys.readouterr().err

    def test_live_config_errors_exit_cleanly(self, capsys):
        """Bad live-cluster configuration is a message, not a traceback."""
        exit_code = main(["cluster", "--replicas", "3"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "at least 4 replicas" in captured.err
        assert "Traceback" not in captured.err

    def test_keyboard_interrupt_exits_quietly(self, capsys, monkeypatch):
        """Ctrl-C during a long run must not spew a traceback."""
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_command_workload", interrupted)
        exit_code = main(["workload", "--transactions", "1"])
        captured = capsys.readouterr()
        assert exit_code == 130
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err


class TestChaosCLI:
    def test_chaos_rejects_malformed_fault_plan(self, capsys):
        exit_code = main(["chaos", "--fault-plan", "{not json"])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_rejects_unknown_plan_keys(self, capsys):
        exit_code = main(["chaos", "--fault-plan", '{"crashs": {"0": 1}}'])
        assert exit_code == 2
        assert "unknown fault plan keys" in capsys.readouterr().err

    def test_chaos_rejects_bad_pair_syntax(self, capsys):
        exit_code = main(["chaos", "--crash", "zero:1"])
        assert exit_code == 2
        assert "REPLICA:VALUE" in capsys.readouterr().err

    def test_chaos_rejects_too_many_faults(self, capsys):
        exit_code = main(
            ["chaos", "--replicas", "4", "--crash", "0:1", "--byzantine", "1"]
        )
        assert exit_code == 2
        assert "tolerates" in capsys.readouterr().err

    def test_cluster_rejects_malformed_fault_plan(self, capsys):
        exit_code = main(["cluster", "--fault-plan", '{"restarts": {"0": 5}}'])
        assert exit_code == 2
        assert "never crashes" in capsys.readouterr().err

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["run", "--backend", "quantum"])
