"""Tests for the unified experiment engine, scenario registry and grid CLI."""

import json

import pytest

from repro.cli import main
from repro.cluster.faults import FaultPlan
from repro.cluster.pipeline import PipelineConfig
from repro.errors import ConfigurationError
from repro.experiments.engine import (
    ENGINE_VERSION,
    ExperimentEngine,
    FaultSpec,
    ScenarioSpec,
    metrics_from_dict,
    metrics_to_dict,
    run_spec,
)
from repro.experiments import registry
from repro.experiments.registry import (
    expand_grid,
    grid,
    grid_names,
    register_grid,
    scalability_specs,
)

#: A deliberately tiny spec so engine tests stay fast.
TINY = ScenarioSpec(
    protocol="orthrus",
    num_replicas=8,
    environment="wan",
    duration=6.0,
    warmup=1.0,
    samples_per_block=4,
    seed=2,
)
TINY_ISS = ScenarioSpec(
    protocol="iss",
    num_replicas=8,
    environment="wan",
    duration=6.0,
    warmup=1.0,
    samples_per_block=4,
    seed=2,
)


class TestFaultSpec:
    def test_round_trip_with_fault_plan(self):
        plan = FaultPlan(
            stragglers={1: 10.0},
            crashes={0: 9.0, 2: 9.0},
            undetectable_faults=2,
        )
        spec = FaultSpec.from_plan(plan)
        assert spec.to_plan() == plan
        assert spec.straggler_count == 1
        assert spec.crash_count == 2

    def test_constructors_match_fault_plan_constructors(self):
        assert FaultSpec.none().to_plan() == FaultPlan.none()
        assert (
            FaultSpec.with_straggler(instance=1).to_plan()
            == FaultPlan.with_straggler(instance=1)
        )
        assert (
            FaultSpec.with_crashes([0, 1], 9.0).to_plan()
            == FaultPlan.with_crashes([0, 1], 9.0)
        )
        assert (
            FaultSpec.with_undetectable(3).to_plan() == FaultPlan.with_undetectable(3)
        )

    def test_summary(self):
        assert FaultSpec.none().summary() == "none"
        assert "straggler" in FaultSpec.with_straggler().summary()
        assert "crash" in FaultSpec.with_crashes([0], 1.0).summary()
        assert "byzantine" in FaultSpec.with_undetectable(1).summary()

    def test_hashable(self):
        assert hash(FaultSpec.with_straggler()) == hash(FaultSpec.with_straggler())


class TestScenarioSpec:
    def test_json_round_trip(self):
        spec = ScenarioSpec(
            protocol="ladon",
            num_replicas=16,
            environment="lan",
            duration=12.0,
            warmup=3.0,
            samples_per_block=4,
            seed=7,
            workload_seed=99,
            payment_fraction=0.8,
            epoch_blocks=8,
            faults=FaultSpec.with_crashes([0, 3], 5.0),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_spec_hash_is_stable_and_discriminating(self):
        assert TINY.spec_hash == ScenarioSpec.from_json(TINY.to_json()).spec_hash
        assert TINY.spec_hash != TINY_ISS.spec_hash

    def test_default_workload_seed_convention(self):
        assert ScenarioSpec(seed=5).resolved_workload_seed == 46
        assert ScenarioSpec(seed=5, workload_seed=3).resolved_workload_seed == 3

    def test_semantically_identical_specs_share_identity(self):
        # Derived defaults are canonicalised at construction: a spec written
        # with explicit values equals (and hashes like) one using defaults,
        # so overlapping grids from different call sites share cache cells.
        assert ScenarioSpec(seed=1, workload_seed=42) == ScenarioSpec(seed=1)
        assert (
            ScenarioSpec(seed=1, workload_seed=42).spec_hash
            == ScenarioSpec(seed=1).spec_hash
        )
        assert (
            ScenarioSpec(payment_fraction=0.46).spec_hash
            == ScenarioSpec().spec_hash
        )

    def test_pipeline_config_materialisation(self):
        config = TINY.pipeline_config()
        assert isinstance(config, PipelineConfig)
        assert config.protocol == "orthrus"
        assert config.num_replicas == 8
        assert config.workload.seed == TINY.resolved_workload_seed
        assert config.faults == FaultPlan.none()

    def test_label_mentions_coordinates(self):
        label = ScenarioSpec(payment_fraction=0.5, faults=FaultSpec.with_straggler()).label()
        assert "orthrus" in label
        assert "n16" in label
        assert "straggler" in label


class TestMetricsSerialisation:
    def test_exact_round_trip(self):
        metrics = run_spec(TINY)
        restored = metrics_from_dict(
            json.loads(json.dumps(metrics_to_dict(metrics)))
        )
        assert restored == metrics


class TestEngineExecution:
    def test_parallel_results_identical_to_serial(self):
        serial = ExperimentEngine(jobs=1).run([TINY, TINY_ISS])
        parallel = ExperimentEngine(jobs=2).run([TINY, TINY_ISS])
        assert [r.spec for r in serial] == [r.spec for r in parallel]
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_cache_round_trip_and_zero_reexecution(self, tmp_path):
        first = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        results = first.run([TINY, TINY_ISS])
        assert first.stats.executed == 2
        assert all(not r.cached for r in results)

        second = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        reloaded = second.run([TINY, TINY_ISS])
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 2
        assert all(r.cached for r in reloaded)
        assert [r.metrics for r in results] == [r.metrics for r in reloaded]

    def test_duplicate_specs_run_once(self):
        engine = ExperimentEngine()
        results = engine.run([TINY, TINY, TINY])
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 2
        assert results[0].metrics == results[1].metrics == results[2].metrics

    def test_stale_code_fingerprint_invalidates_cache(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run([TINY])
        cache_file = tmp_path / f"{TINY.spec_hash}.json"
        payload = json.loads(cache_file.read_text())
        payload["code_fingerprint"] = "0" * 64  # simulate edited source code
        cache_file.write_text(json.dumps(payload))
        fresh = ExperimentEngine(cache_dir=tmp_path)
        fresh.run([TINY])
        assert fresh.stats.executed == 1

    def test_stale_engine_version_invalidates_cache(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run([TINY])
        cache_file = tmp_path / f"{TINY.spec_hash}.json"
        payload = json.loads(cache_file.read_text())
        assert payload["engine_version"] == ENGINE_VERSION
        payload["engine_version"] = ENGINE_VERSION - 1
        cache_file.write_text(json.dumps(payload))
        fresh = ExperimentEngine(cache_dir=tmp_path)
        fresh.run([TINY])
        assert fresh.stats.executed == 1

    def test_corrupt_cache_entry_is_ignored(self, tmp_path):
        (tmp_path / f"{TINY.spec_hash}.json").write_text("not json{")
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run([TINY])
        assert engine.stats.executed == 1

    def test_malformed_cache_payload_is_a_miss_not_a_crash(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.run([TINY])
        cache_file = tmp_path / f"{TINY.spec_hash}.json"
        payload = json.loads(cache_file.read_text())
        # Valid JSON, valid version/fingerprint, corrupted fields: a
        # non-numeric fault timeout and a truncated latency_series entry.
        payload["spec"]["faults"]["view_change_timeout"] = "abc"
        payload["metrics"]["latency_series"] = [[1.0]]
        cache_file.write_text(json.dumps(payload))
        fresh = ExperimentEngine(cache_dir=tmp_path)
        fresh.run([TINY])
        assert fresh.stats.executed == 1

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)

    def test_unusable_cache_dir_fails_fast(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a file where a directory is needed
        with pytest.raises(OSError):
            ExperimentEngine(cache_dir=blocker / "cache")

    def test_cache_write_failure_keeps_results_and_warns_once(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        engine = ExperimentEngine(cache_dir=tmp_path)
        # The directory vanishes (or loses permissions) mid-run: results must
        # still come back, with a single warning instead of a crash.
        engine.cache_dir = blocker / "cache"
        results = engine.run([TINY, TINY_ISS])
        assert len(results) == 2
        assert all(r.metrics.confirmed > 0 for r in results)
        err = capsys.readouterr().err
        assert err.count("cache write failed") == 1


class TestRegistry:
    def test_paper_figures_are_registered(self):
        names = grid_names()
        for figure in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert figure in names

    def test_expand_known_grid(self):
        specs = expand_grid("fig8", scale="smoke")
        assert len(specs) == 6
        assert {spec.faults.undetectable_faults for spec in specs} == {0, 1, 2, 3, 4, 5}
        assert all(spec.protocol == "orthrus" for spec in specs)

    def test_fig3_covers_both_straggler_panels(self):
        specs = expand_grid("fig3", scale="smoke")
        assert {spec.faults.straggler_count for spec in specs} == {0, 1}
        assert all(spec.environment == "wan" for spec in specs)

    def test_unknown_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            grid("fig99")

    def test_builders_match_scenario_seeds(self):
        # Guards the cache-sharing property: the registry and the scenario
        # library must expand identical specs for identical grids.
        specs = scalability_specs("wan", stragglers=0, protocols=("orthrus",), scale="smoke")
        assert all(spec.seed == 1 for spec in specs)
        assert [spec.num_replicas for spec in specs] == [8, 16]


class TestGridCLI:
    @pytest.fixture()
    def tiny_grid(self):
        register_grid(
            "tiny-test-grid",
            "two fast cells for CLI tests",
            lambda scale: [TINY, TINY_ISS],
        )
        yield "tiny-test-grid"
        registry._GRIDS.pop("tiny-test-grid", None)

    def test_grid_list(self, capsys):
        assert main(["grid", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "scalability" in out.lower()

    def test_grid_requires_name(self, capsys):
        assert main(["grid"]) == 2

    def test_grid_unknown_name_reports_clean_error(self, capsys):
        assert main(["grid", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown grid" in err
        assert "fig3" in err  # lists what is registered

    def test_grid_runs_and_caches(self, tiny_grid, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["grid", tiny_grid, "--jobs", "4", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "orthrus" in first and "iss" in first
        assert "2 executed" in first

        # Acceptance: the second invocation with the same cache directory
        # executes zero new simulations and reports identical values.
        assert main(["grid", tiny_grid, "--jobs", "4", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second
        assert "2 cached" in second

        def table_rows(text):
            return [
                line.replace("cached", "").replace("run", "").strip()
                for line in text.splitlines()
                if line.startswith(("orthrus", "iss"))
            ]

        assert table_rows(first) == table_rows(second)

    def test_grid_parallel_matches_serial(self, tiny_grid, capsys):
        assert main(["grid", tiny_grid, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["grid", tiny_grid, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        rows = lambda text: [
            line for line in text.splitlines() if line.startswith(("orthrus", "iss"))
        ]
        assert rows(serial) == rows(parallel)

    def test_grid_csv_output(self, tiny_grid, tmp_path, capsys):
        assert main(
            ["grid", tiny_grid, "--csv", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("spec_hash,protocol,")
        assert "throughput_tps" in header
        assert len(out.strip().splitlines()) == 3


def _fake_metrics(spec):
    """Simulator-shaped metrics without touching sockets (live-runner stub)."""
    from repro.cluster.pipeline import run_pipeline_experiment

    tiny = ScenarioSpec(
        protocol=spec.protocol,
        num_replicas=8,
        duration=4.0,
        warmup=1.0,
        samples_per_block=4,
        seed=spec.seed,
    )
    metrics = run_pipeline_experiment(tiny.pipeline_config())
    metrics.extra["live_backend"] = 1.0
    return metrics


class TestLiveBackendDispatch:
    def test_backend_field_validates(self):
        with pytest.raises(ValueError):
            ScenarioSpec(backend="quantum")

    def test_backend_round_trips_and_changes_identity(self):
        live = ScenarioSpec(backend="live", faults=FaultSpec.with_crashes([0], 2.0))
        assert ScenarioSpec.from_json(live.to_json()) == live
        sim = ScenarioSpec(faults=FaultSpec.with_crashes([0], 2.0))
        assert live.spec_hash != sim.spec_hash
        assert "live" in live.label()

    def test_restarts_survive_spec_round_trip(self):
        faults = FaultSpec(crashes=((0, 2.0),), restarts=((0, 5.0),))
        spec = ScenarioSpec(backend="live", faults=faults)
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.faults.restarts == ((0, 5.0),)
        plan = restored.faults.to_plan()
        assert plan.restarts == {0: 5.0}
        assert FaultSpec.from_plan(plan) == faults

    def test_live_specs_dispatch_to_the_injected_runner(self):
        calls = []

        def runner(spec):
            calls.append(spec)
            return _fake_metrics(spec)

        engine = ExperimentEngine(live_runner=runner)
        live = ScenarioSpec(backend="live", duration=6.0, seed=2)
        results = engine.run([live, TINY])
        assert calls == [live]
        assert engine.stats.executed == 2
        by_spec = {result.spec: result for result in results}
        assert by_spec[live].metrics.extra["live_backend"] == 1.0
        assert "live_backend" not in by_spec[TINY].metrics.extra

    def test_live_results_are_never_cached(self, tmp_path):
        runs = []

        def runner(spec):
            runs.append(spec)
            return _fake_metrics(spec)

        live = ScenarioSpec(backend="live", duration=6.0, seed=2)
        first = ExperimentEngine(cache_dir=tmp_path, live_runner=runner)
        first.run([live])
        second = ExperimentEngine(cache_dir=tmp_path, live_runner=runner)
        second.run([live])
        assert len(runs) == 2  # re-executed, not served from cache
        assert second.stats.cache_hits == 0
        assert not list(tmp_path.glob(f"{live.spec_hash}*"))

    def test_same_fault_spec_drives_both_backends(self):
        # The acceptance property: one FaultSpec, two backends, no morphing.
        faults = FaultSpec.with_crashes([0], 2.0, view_change_timeout=2.0)
        seen = {}

        def runner(spec):
            seen["live_faults"] = spec.faults
            return _fake_metrics(spec)

        engine = ExperimentEngine(live_runner=runner)
        live = ScenarioSpec(backend="live", faults=faults, duration=6.0, seed=2)
        sim = ScenarioSpec(
            num_replicas=8,
            duration=6.0,
            warmup=1.0,
            samples_per_block=4,
            seed=2,
            faults=faults,
        )
        engine.run([live, sim])
        assert seen["live_faults"] == faults
        assert sim.pipeline_config().faults.crashes == {0: 2.0}
