"""Tests for the experiment scenario library and text reporting."""

import pytest

from repro.experiments.reporting import (
    breakdown_table,
    fault_timeline_table,
    format_table,
    proportion_table,
    relative_change,
    scalability_table,
    undetectable_table,
)
from repro.experiments.results import (
    BreakdownResult,
    FaultTimeline,
    ProportionPoint,
    ScalabilityPoint,
    TimelinePoint,
    UndetectableFaultPoint,
)
from repro.experiments.scenarios import (
    ScenarioScale,
    latency_breakdown,
    payment_proportion_sweep,
    scalability_sweep,
    undetectable_fault_sweep,
)


class TestScenarioScale:
    def test_named_scales(self):
        assert ScenarioScale.named("paper").replica_counts[-1] == 128
        assert ScenarioScale.named("ci").replica_counts == (8, 16, 32, 64, 128)
        assert ScenarioScale.named("smoke").replica_counts == (8, 16)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ScenarioScale.named("galactic")

    def test_straggler_window_is_longer(self):
        scale = ScenarioScale.named("ci")
        duration, warmup = scale.window_for(1)
        assert duration > scale.duration
        assert warmup > scale.warmup
        assert scale.window_for(0) == (scale.duration, scale.warmup)


class TestScenariosSmoke:
    """Smoke-scale runs of the figure scenarios (fast, reduced grids)."""

    def test_scalability_sweep_rows(self):
        points = scalability_sweep(
            "wan", stragglers=0, protocols=("orthrus", "iss"), scale="smoke"
        )
        assert len(points) == 4  # 2 replica counts x 2 protocols
        assert {p.protocol for p in points} == {"orthrus", "iss"}
        assert all(p.throughput_ktps > 0 for p in points)
        assert all(p.latency_s > 0 for p in points)

    def test_payment_proportion_sweep(self):
        points = payment_proportion_sweep(
            stragglers=0, proportions=(0.0, 1.0), num_replicas=8, scale="smoke"
        )
        assert len(points) == 2
        # All-payment workloads confirm faster than all-contract workloads.
        assert points[1].latency_s < points[0].latency_s

    def test_latency_breakdown_shapes(self):
        results = latency_breakdown(
            protocols=("orthrus", "iss"), num_replicas=8, scale="smoke"
        )
        by_protocol = {r.protocol: r for r in results}
        assert set(by_protocol) == {"orthrus", "iss"}
        iss = by_protocol["iss"]
        orthrus = by_protocol["orthrus"]
        # With a straggler, ISS spends far more of its latency in global
        # ordering than Orthrus (the paper's Fig. 6 observation).
        assert iss.stages["global_ordering"] > orthrus.stages["global_ordering"]
        assert 0 <= orthrus.global_ordering_share <= 1

    def test_undetectable_sweep_latency_monotone_tendency(self):
        points = undetectable_fault_sweep(
            fault_counts=(0, 2), num_replicas=8, scale="smoke"
        )
        assert points[1].latency_s > points[0].latency_s


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "----" in lines[1]

    def test_scalability_table_contains_rows(self):
        table = scalability_table(
            [
                ScalabilityPoint("orthrus", 16, "wan", 0, 55.2, 3.4),
                ScalabilityPoint("iss", 16, "wan", 0, 51.0, 4.2),
            ]
        )
        assert "orthrus" in table
        assert "55.2" in table

    def test_proportion_table(self):
        table = proportion_table([ProportionPoint(0.5, 1, 60.0, 5.0)])
        assert "50%" in table

    def test_breakdown_table_lists_stages(self):
        table = breakdown_table(
            [
                BreakdownResult(
                    protocol="iss",
                    stages={
                        "send": 0.1,
                        "preprocessing": 0.2,
                        "partial_ordering": 0.3,
                        "global_ordering": 5.0,
                        "reply": 0.1,
                    },
                    total_latency_s=5.7,
                )
            ]
        )
        assert "global_ordering" in table
        assert "5.000" in table

    def test_fault_timeline_table(self):
        timeline = FaultTimeline(
            faulty_replicas=1,
            points=[TimelinePoint(t * 0.5, 50.0, 1.0) for t in range(8)],
        )
        table = fault_timeline_table([timeline], stride=2)
        assert "f=1 ktps" in table
        assert table.count("\n") >= 4

    def test_undetectable_table(self):
        table = undetectable_table([UndetectableFaultPoint(3, 40.0, 6.5)])
        assert "3" in table
        assert "40.0" in table

    def test_relative_change(self):
        assert relative_change(10.0, 5.0) == pytest.approx(-0.5)
        assert relative_change(0.0, 5.0) == 0.0
