"""The ``repro bench`` harness: report schema, regression gate, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import BenchResult, check_regressions, load_report, write_report
from repro.bench.report import BENCH_SCHEMA_VERSION, build_report, format_results
from repro.bench.suites import run_suite
from repro.cli import main


def _result(name="digest", value=100.0, higher=True, unit="ops/s"):
    return BenchResult(name=name, unit=unit, value=value, higher_is_better=higher)


class TestReport:
    def test_build_report_shape_and_speedups(self):
        results = [
            _result("fast_thing", 200.0),
            _result("wallclock", 2.0, higher=False, unit="seconds"),
        ]
        report = build_report(
            results,
            pr=5,
            suite="quick",
            baselines={"fast_thing": 100.0, "wallclock": 4.0},
        )
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["pr"] == 5
        benchmarks = report["benchmarks"]
        assert benchmarks["fast_thing"]["speedup"] == 2.0
        assert benchmarks["fast_thing"]["baseline_pre_pr"] == 100.0
        # Lower-is-better speedups are oriented so > 1.0 is still better.
        assert benchmarks["wallclock"]["speedup"] == 2.0

    def test_round_trip_through_disk(self, tmp_path):
        report = build_report([_result()], pr=5, suite="quick")
        path = tmp_path / "BENCH_test.json"
        write_report(report, path)
        assert load_report(path) == report

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported bench schema"):
            load_report(path)

    def test_format_results_lists_every_benchmark(self):
        table = format_results([_result("alpha"), _result("beta")])
        assert "alpha" in table and "beta" in table


class TestRegressionGate:
    def _committed(self, value=100.0, higher=True, name="digest"):
        return build_report(
            [_result(name=name, value=value, higher=higher)], pr=5, suite="quick"
        )

    def test_within_tolerance_passes(self):
        committed = self._committed(100.0)
        assert check_regressions([_result(value=80.0)], committed, tolerance=0.30) == []

    def test_regression_beyond_tolerance_fails(self):
        committed = self._committed(100.0)
        failures = check_regressions([_result(value=60.0)], committed, tolerance=0.30)
        assert len(failures) == 1 and "digest" in failures[0]

    def test_lower_is_better_direction(self):
        committed = self._committed(1.0, higher=False)
        slower = [_result(value=2.0, higher=False)]
        faster = [_result(value=0.5, higher=False)]
        assert check_regressions(slower, committed, tolerance=0.30)
        assert check_regressions(faster, committed, tolerance=0.30) == []

    def test_new_benchmarks_are_ignored(self):
        committed = self._committed(100.0, name="other")
        assert check_regressions([_result()], committed, tolerance=0.30) == []

    def test_host_speed_normalisation(self):
        """A slower checking host is held to a proportionally lower bar."""
        committed = self._committed(100.0)
        committed["host"]["speed_score"] = 1000.0
        # Half-speed host measuring half the ops/s: no regression.
        assert (
            check_regressions(
                [_result(value=50.0)],
                committed,
                tolerance=0.30,
                current_speed_score=500.0,
            )
            == []
        )
        # Half-speed host measuring a quarter of the ops/s: real regression.
        assert check_regressions(
            [_result(value=25.0)],
            committed,
            tolerance=0.30,
            current_speed_score=500.0,
        )
        # Lower-is-better scales inversely: a half-speed host may take twice
        # as long without failing.
        slow_host_wallclock = self._committed(1.0, higher=False)
        slow_host_wallclock["host"]["speed_score"] = 1000.0
        assert (
            check_regressions(
                [_result(value=2.0, higher=False)],
                slow_host_wallclock,
                tolerance=0.30,
                current_speed_score=500.0,
            )
            == []
        )

    def test_reports_without_speed_score_compare_absolutely(self):
        committed = self._committed(100.0)
        committed["host"].pop("speed_score", None)
        failures = check_regressions(
            [_result(value=60.0)], committed, tolerance=0.30, current_speed_score=1.0
        )
        assert len(failures) == 1


class TestSuites:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark suite"):
            run_suite("nope")

    def test_committed_bench_file_is_loadable_and_complete(self):
        """BENCH_5.json at the repo root must satisfy the acceptance shape."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_5.json"
        report = load_report(path)
        benchmarks = report["benchmarks"]
        assert len(benchmarks) >= 6
        for name in (
            "digest_block_64tx",
            "codec_roundtrip_mix",
            "ladon_release_10k",
            "sim_event_throughput",
            "fig3_small_wallclock",
            "live_smoke_tps",
        ):
            assert name in benchmarks, name
        # The three headline micro benchmarks must document >= 2x speedups
        # against the pre-PR baselines recorded in the same file.
        for name in ("digest_block_64tx", "codec_roundtrip_mix", "ladon_release_10k"):
            assert benchmarks[name]["speedup"] >= 2.0, (name, benchmarks[name])
        # The end-to-end numbers must have improved as well.
        for name in ("fig3_small_wallclock", "live_smoke_tps"):
            assert benchmarks[name]["speedup"] > 1.0, (name, benchmarks[name])


class TestBenchCLI:
    def test_bad_check_path_fails_before_running_benchmarks(self, capsys):
        import repro.bench.suites as suites

        def explode():  # pragma: no cover - must never run
            raise AssertionError("suite ran despite invalid --check path")

        original = suites._QUICK
        suites._QUICK = (explode,)
        try:
            code = main(["bench", "--suite", "quick", "--check", "/no/such/file.json"])
        finally:
            suites._QUICK = original
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_baselines_path_fails_before_running_benchmarks(self):
        import repro.bench.suites as suites

        def explode():  # pragma: no cover - must never run
            raise AssertionError("suite ran despite invalid --baselines path")

        original = suites._QUICK
        suites._QUICK = (explode,)
        try:
            code = main(["bench", "--suite", "quick", "--baselines", "/nope.json"])
        finally:
            suites._QUICK = original
        assert code == 2

    def test_bench_check_gate(self, tmp_path, capsys):
        committed = tmp_path / "BENCH_x.json"
        # A committed report with absurdly high numbers: the fresh run must
        # regress against it and exit 1.
        write_report(
            build_report(
                [
                    BenchResult(
                        name="sim_event_throughput",
                        unit="events/s",
                        value=1e12,
                        higher_is_better=True,
                    )
                ],
                pr=5,
                suite="quick",
            ),
            committed,
        )
        # And one the fresh run trivially beats.
        passing = tmp_path / "BENCH_low.json"
        write_report(
            build_report(
                [
                    BenchResult(
                        name="sim_event_throughput",
                        unit="events/s",
                        value=1.0,
                        higher_is_better=True,
                    )
                ],
                pr=5,
                suite="quick",
            ),
            passing,
        )
        # Patch the quick suite down to the single fastest benchmark so the
        # CLI test stays cheap.
        import repro.bench.suites as suites

        original = suites._QUICK
        suites._QUICK = (suites.bench_sim_events,)
        try:
            assert main(["bench", "--suite", "quick", "--check", str(passing)]) == 0
            assert main(["bench", "--suite", "quick", "--check", str(committed)]) == 1
        finally:
            suites._QUICK = original
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err

    def test_bench_writes_output_with_baselines(self, tmp_path):
        baselines = tmp_path / "pre.json"
        baselines.write_text(
            json.dumps({"sim_event_throughput": 1.0}), encoding="utf-8"
        )
        output = tmp_path / "BENCH_out.json"
        import repro.bench.suites as suites

        original = suites._QUICK
        suites._QUICK = (suites.bench_sim_events,)
        try:
            code = main(
                [
                    "bench",
                    "--suite",
                    "quick",
                    "--output",
                    str(output),
                    "--baselines",
                    str(baselines),
                ]
            )
        finally:
            suites._QUICK = original
        assert code == 0
        report = load_report(output)
        entry = report["benchmarks"]["sim_event_throughput"]
        assert entry["baseline_pre_pr"] == 1.0
        assert entry["speedup"] > 1.0
