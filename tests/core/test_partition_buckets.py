"""Tests for bucket partitioning and the bucket queue."""

import pytest

from repro.core.buckets import Bucket
from repro.core.partition import (
    LoadBalancedPartitioner,
    PayerPartitioner,
    TransactionPartitioner,
    stable_hash,
)
from repro.ledger.transactions import contract_call, payment, simple_transfer


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("alice") == stable_hash("alice")

    def test_distinguishes_keys(self):
        assert stable_hash("alice") != stable_hash("bob")


class TestPayerPartitioner:
    def test_same_payer_always_same_bucket(self):
        partitioner = PayerPartitioner(8)
        tx1 = simple_transfer("alice", "bob", 1)
        tx2 = simple_transfer("alice", "carol", 2)
        assert partitioner.buckets_for(tx1) == partitioner.buckets_for(tx2)

    def test_multi_payer_transaction_spans_buckets(self):
        partitioner = PayerPartitioner(1000)
        tx = payment({"alice": 1, "bob": 1}, {"carol": 2})
        buckets = partitioner.buckets_for(tx)
        assert len(buckets) == 2
        assert buckets == sorted(buckets)

    def test_payee_does_not_influence_assignment(self):
        partitioner = PayerPartitioner(16)
        tx = simple_transfer("alice", "bob", 1)
        assert partitioner.buckets_for(tx) == [partitioner.assign_object("alice")]

    def test_contract_callers_determine_buckets(self):
        partitioner = PayerPartitioner(1000)
        tx = contract_call({"alice": 1, "bob": 1}, {"slot": 5})
        assert set(partitioner.buckets_for(tx)) == {
            partitioner.assign_object("alice"),
            partitioner.assign_object("bob"),
        }

    def test_transaction_without_decrements_falls_back_to_id_hash(self):
        partitioner = PayerPartitioner(4)
        mint = payment({}, {"carol": 5}, tx_id="mint-1")
        buckets = partitioner.buckets_for(mint)
        assert len(buckets) == 1
        assert 0 <= buckets[0] < 4

    def test_invalid_instance_count_rejected(self):
        with pytest.raises(ValueError):
            PayerPartitioner(0)


class TestTransactionPartitioner:
    def test_single_bucket_by_id(self):
        partitioner = TransactionPartitioner(8)
        tx = payment({"alice": 1, "bob": 1}, {"carol": 2}, tx_id="fixed")
        assert len(partitioner.buckets_for(tx)) == 1

    def test_roughly_uniform_distribution(self):
        partitioner = TransactionPartitioner(4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            tx = simple_transfer("a", "b", 1, tx_id=f"tx-{i}")
            counts[partitioner.buckets_for(tx)[0]] += 1
        assert min(counts) > 350


class TestLoadBalancedPartitioner:
    def test_pinned_accounts_override_hash(self):
        partitioner = LoadBalancedPartitioner(8, {"whale": 3})
        assert partitioner.assign_object("whale") == 3
        tx = simple_transfer("whale", "bob", 1)
        assert partitioner.buckets_for(tx) == [3]

    def test_pin_validates_range(self):
        partitioner = LoadBalancedPartitioner(4)
        with pytest.raises(ValueError):
            partitioner.pin("whale", 9)

    def test_unpinned_accounts_use_hash(self):
        plain = PayerPartitioner(8)
        balanced = LoadBalancedPartitioner(8)
        assert balanced.assign_object("alice") == plain.assign_object("alice")


class TestBucket:
    def test_push_and_pull_fifo(self):
        bucket = Bucket(0)
        txs = [simple_transfer("a", "b", 1, tx_id=f"t{i}") for i in range(5)]
        for tx in txs:
            assert bucket.push(tx)
        assert len(bucket) == 5
        pulled = bucket.pull(3)
        assert [tx.tx_id for tx in pulled] == ["t0", "t1", "t2"]
        assert len(bucket) == 2

    def test_duplicate_push_rejected(self):
        bucket = Bucket(0)
        tx = simple_transfer("a", "b", 1, tx_id="dup")
        assert bucket.push(tx)
        assert not bucket.push(tx)
        assert len(bucket) == 1

    def test_pulled_transactions_cannot_be_repushed(self):
        bucket = Bucket(0)
        tx = simple_transfer("a", "b", 1, tx_id="t0")
        bucket.push(tx)
        bucket.pull(1)
        assert not bucket.push(tx)

    def test_requeue_restores_front_order(self):
        bucket = Bucket(0)
        txs = [simple_transfer("a", "b", 1, tx_id=f"t{i}") for i in range(4)]
        for tx in txs:
            bucket.push(tx)
        pulled = bucket.pull(2)
        bucket.requeue(pulled)
        assert [tx.tx_id for tx in bucket.peek_all()] == ["t0", "t1", "t2", "t3"]

    def test_mark_confirmed_allows_forgetting_in_flight(self):
        bucket = Bucket(0)
        tx = simple_transfer("a", "b", 1, tx_id="t0")
        bucket.push(tx)
        bucket.pull(1)
        bucket.mark_confirmed(["t0"])
        assert bucket.push(tx)  # a brand-new submission of the same id is allowed

    def test_purge_removes_listed_transactions(self):
        bucket = Bucket(0)
        for i in range(4):
            bucket.push(simple_transfer("a", "b", 1, tx_id=f"t{i}"))
        removed = bucket.purge(["t1", "t3", "missing"])
        assert removed == 2
        assert [tx.tx_id for tx in bucket.peek_all()] == ["t0", "t2"]

    def test_contains_by_id(self):
        bucket = Bucket(0)
        bucket.push(simple_transfer("a", "b", 1, tx_id="present"))
        assert "present" in bucket
        assert "absent" not in bucket

    def test_defer_moves_pulled_txs_to_the_back(self):
        bucket = Bucket(0)
        txs = [simple_transfer("a", "b", 1, tx_id=f"t{i}") for i in range(4)]
        for tx in txs:
            bucket.push(tx)
        pulled = bucket.pull(2)
        assert bucket.defer(pulled) == 2
        assert [tx.tx_id for tx in bucket.peek_all()] == ["t2", "t3", "t0", "t1"]
        assert not bucket.in_flight_txs()

    def test_defer_skips_duplicates_already_queued(self):
        bucket = Bucket(0)
        tx = simple_transfer("a", "b", 1, tx_id="t0")
        bucket.push(tx)
        pulled = bucket.pull(1)
        bucket.requeue(pulled)  # already back in the queue
        assert bucket.defer(pulled) == 0
        assert len(bucket) == 1

    def test_in_flight_txs_reflect_pull_and_confirm(self):
        bucket = Bucket(0)
        txs = [simple_transfer("a", "b", 1, tx_id=f"t{i}") for i in range(3)]
        for tx in txs:
            bucket.push(tx)
        bucket.pull(2)
        assert {tx.tx_id for tx in bucket.in_flight_txs()} == {"t0", "t1"}
        bucket.mark_confirmed(["t0"])
        assert {tx.tx_id for tx in bucket.in_flight_txs()} == {"t1"}
