"""Tests for the blocking (no Solution-II) ablation core."""

from repro.core.blocking import BlockingOrthrusCore
from repro.core.config import CoreConfig
from repro.core.outcomes import TxStatus
from repro.core.partition import LoadBalancedPartitioner
from repro.ledger.blocks import Block, SystemState
from repro.ledger.state import StateStore
from repro.ledger.transactions import contract_call, simple_transfer
from repro.protocols.registry import build_core


def build(balances):
    config = CoreConfig(num_instances=2, batch_size=8, epoch_length=1000)
    store = StateStore()
    store.load_accounts(balances)
    store.create_shared("slot", 0)
    core = BlockingOrthrusCore(config, store)
    core.partitioner = LoadBalancedPartitioner(2, {"alice": 0, "carol": 0, "bob": 1})
    return core


def deliver(core, instance, sn, txs):
    block = Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=txs,
        state=SystemState.initial(2),
        proposer=instance,
        rank=core.next_rank(),
    )
    return core.on_block_delivered(block)


class TestBlockingAblation:
    def test_registry_exposes_ablation_core(self):
        core = build_core("orthrus-blocking", CoreConfig(num_instances=2))
        assert isinstance(core, BlockingOrthrusCore)
        assert core.name == "orthrus-blocking"

    def test_pending_contract_blocks_subsequent_payment(self):
        core = build({"alice": 0, "bob": 30, "carol": 0})
        ctx = contract_call({"bob": 10}, {"slot": 1}, tx_id="c1")
        pay = simple_transfer("bob", "carol", 15, tx_id="p1")
        outcomes = deliver(core, 1, 0, [ctx, pay])
        # Unlike OrthrusCore, the payment does NOT confirm while the contract
        # is pending: it waits behind the payer lock.
        assert outcomes == []
        assert core.status_of("p1") is TxStatus.PENDING
        assert core.store.balance_of("carol") == 0
        # Once the contract is globally ordered the lock is released and the
        # blocked payment confirms.
        outcomes = deliver(core, 0, 0, [])
        statuses = {o.tx.tx_id: o.status for o in outcomes}
        assert statuses["c1"] is TxStatus.COMMITTED
        assert statuses["p1"] is TxStatus.COMMITTED
        assert core.store.balance_of("carol") == 15

    def test_unrelated_payments_are_not_blocked(self):
        core = build({"alice": 20, "bob": 30, "carol": 0})
        ctx = contract_call({"bob": 10}, {"slot": 1}, tx_id="c1")
        unrelated = simple_transfer("alice", "carol", 5, tx_id="p-alice")
        deliver(core, 1, 0, [ctx])
        outcomes = deliver(core, 0, 0, [unrelated])
        assert any(
            o.tx.tx_id == "p-alice" and o.status is TxStatus.COMMITTED for o in outcomes
        )

    def test_blocking_core_matches_orthrus_final_state(self):
        # The ablation changes *when* payments confirm, not the final values.
        from repro.core.orthrus import OrthrusCore

        balances = {"alice": 0, "bob": 30, "carol": 0}
        blocking = build(balances)
        config = CoreConfig(num_instances=2, batch_size=8, epoch_length=1000)
        store = StateStore()
        store.load_accounts(balances)
        store.create_shared("slot", 0)
        plain = OrthrusCore(config, store)
        plain.partitioner = LoadBalancedPartitioner(2, {"alice": 0, "carol": 0, "bob": 1})

        ctx = contract_call({"bob": 10}, {"slot": 7}, tx_id="c1")
        pay = simple_transfer("bob", "carol", 15, tx_id="p1")
        for core in (blocking, plain):
            deliver(core, 1, 0, [ctx, pay])
            deliver(core, 0, 0, [])
            deliver(core, 1, 1, [])
            deliver(core, 0, 1, [])
        assert blocking.store.state_digest() == plain.store.state_digest()
