"""Tests for partial logs, the processed frontier, epochs and checkpoints."""

import pytest

from repro.core.epochs import Checkpoint, CheckpointQuorum, EpochTracker
from repro.core.logs import PartialLog, ProcessedFrontier
from repro.ledger.blocks import Block, SystemState
from repro.ledger.transactions import simple_transfer


def make_block(instance, sn, state=None):
    return Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=[simple_transfer("a", "b", 1)],
        state=state or SystemState.initial(2),
        proposer=instance,
    )


class TestPartialLog:
    def test_add_and_peek_in_order(self):
        plog = PartialLog(0)
        assert plog.add(make_block(0, 0))
        assert plog.add(make_block(0, 1))
        assert plog.peek_next().sequence_number == 0
        plog.advance()
        assert plog.peek_next().sequence_number == 1

    def test_duplicate_add_rejected(self):
        plog = PartialLog(0)
        assert plog.add(make_block(0, 0))
        assert not plog.add(make_block(0, 0))

    def test_gap_blocks_processing(self):
        plog = PartialLog(0)
        plog.add(make_block(0, 1))
        assert plog.peek_next() is None
        plog.add(make_block(0, 0))
        assert plog.peek_next().sequence_number == 0

    def test_highest_delivered_tracks_maximum(self):
        plog = PartialLog(0)
        assert plog.highest_delivered == -1
        plog.add(make_block(0, 4))
        assert plog.highest_delivered == 4

    def test_prune_below_keeps_unprocessed(self):
        plog = PartialLog(0)
        for sn in range(4):
            plog.add(make_block(0, sn))
        plog.advance()
        plog.advance()
        removed = plog.prune_below(3)
        assert removed == 2
        assert plog.get(2) is not None


class TestProcessedFrontier:
    def test_covers_initial_state(self):
        frontier = ProcessedFrontier(2)
        assert frontier.covers(SystemState.initial(2))

    def test_covers_after_advancing(self):
        frontier = ProcessedFrontier(2)
        frontier.advance(0, 3)
        assert frontier.covers(SystemState((3, -1)))
        assert not frontier.covers(SystemState((4, -1)))
        assert not frontier.covers(SystemState((0, 0)))

    def test_arity_mismatch_never_covered(self):
        frontier = ProcessedFrontier(2)
        assert not frontier.covers(SystemState((-1,)))

    def test_as_state_and_indexing(self):
        frontier = ProcessedFrontier(3)
        frontier.advance(1, 5)
        assert frontier.as_state().sequence_numbers == (-1, 5, -1)
        assert frontier[1] == 5


class TestEpochTracker:
    def test_epoch_of(self):
        tracker = EpochTracker(2, epoch_length=4)
        assert tracker.epoch_of(0) == 0
        assert tracker.epoch_of(3) == 0
        assert tracker.epoch_of(4) == 1

    def test_epoch_completes_only_when_all_instances_finish(self):
        tracker = EpochTracker(2, epoch_length=2)
        tracker.record_processed(0, 1)
        assert tracker.newly_completed() == []
        tracker.record_processed(1, 1)
        assert tracker.newly_completed() == [0]
        assert tracker.completed_count == 1

    def test_multiple_epochs_complete_in_order(self):
        tracker = EpochTracker(2, epoch_length=1)
        tracker.record_processed(0, 3)
        tracker.record_processed(1, 3)
        assert tracker.newly_completed() == [0, 1, 2, 3]

    def test_invalid_epoch_length_rejected(self):
        with pytest.raises(ValueError):
            EpochTracker(2, epoch_length=0)

    def test_first_sequence_of(self):
        tracker = EpochTracker(2, epoch_length=8)
        assert tracker.first_sequence_of(3) == 24


class TestCheckpoints:
    def test_checkpoint_digest_depends_on_state(self):
        a = Checkpoint(epoch=0, frontier=(1, 1), state_digest="abc")
        b = Checkpoint(epoch=0, frontier=(1, 1), state_digest="def")
        assert a.digest != b.digest

    def test_quorum_becomes_stable_at_threshold(self):
        quorum = CheckpointQuorum(3)
        assert not quorum.add_vote(0, "d", replica=0)
        assert not quorum.add_vote(0, "d", replica=1)
        assert quorum.add_vote(0, "d", replica=2)
        assert quorum.is_stable(0)
        assert quorum.stable_digest(0) == "d"

    def test_mismatched_digests_do_not_combine(self):
        quorum = CheckpointQuorum(2)
        quorum.add_vote(0, "d1", replica=0)
        assert not quorum.add_vote(0, "d2", replica=1)
        assert not quorum.is_stable(0)

    def test_votes_after_stability_ignored(self):
        quorum = CheckpointQuorum(1)
        assert quorum.add_vote(0, "d", replica=0)
        assert not quorum.add_vote(0, "d", replica=1)
