"""The bucket's lazy-purge (ghost) machinery and O(batch) pulls.

Garbage collection purges by moving ids into a ghost set instead of
rebuilding the queue; these tests cover the ghost lifecycle — skip on pull,
eviction when a purged id is re-added, wholesale compaction — and the
``pull_one`` path ``select_batch`` scans with.
"""

from __future__ import annotations

from repro.core.buckets import Bucket, _COMPACT_MIN
from repro.ledger.transactions import simple_transfer


def _tx(index: int, amount: int = 1):
    return simple_transfer(f"payer-{index}", f"payee-{index}", amount, tx_id=f"t{index}")


class TestLazyPurge:
    def test_purge_is_lazy_but_invisible(self):
        bucket = Bucket(0)
        txs = [_tx(i) for i in range(6)]
        for tx in txs:
            bucket.push(tx)
        removed = bucket.purge(["t1", "t3", "missing"])
        assert removed == 2
        assert len(bucket) == 4
        assert "t1" not in bucket and "t3" not in bucket
        assert [tx.tx_id for tx in bucket.peek_all()] == ["t0", "t2", "t4", "t5"]
        # Pulls skip the ghost entries in order.
        assert [tx.tx_id for tx in bucket.pull(10)] == ["t0", "t2", "t4", "t5"]
        assert len(bucket) == 0

    def test_pull_one_skips_ghosts(self):
        bucket = Bucket(0)
        bucket.push(_tx(0))
        bucket.push(_tx(1))
        bucket.purge(["t0"])
        pulled = bucket.pull_one()
        assert pulled is not None and pulled.tx_id == "t1"
        assert bucket.pull_one() is None

    def test_repush_after_purge_appends_at_back(self):
        bucket = Bucket(0)
        for i in range(3):
            bucket.push(_tx(i))
        bucket.purge(["t0"])
        # Re-adding a purged id must evict its ghost entry; the fresh copy
        # queues at the back, exactly as with the old physical purge.
        assert bucket.push(_tx(0))
        assert [tx.tx_id for tx in bucket.peek_all()] == ["t1", "t2", "t0"]
        assert [tx.tx_id for tx in bucket.pull(10)] == ["t1", "t2", "t0"]

    def test_requeue_after_purge_goes_to_front(self):
        bucket = Bucket(0)
        for i in range(3):
            bucket.push(_tx(i))
        pulled = bucket.pull(1)  # t0 in flight
        bucket.purge(["t1"])
        # A view change hands the in-flight tx back while its id has no
        # ghost, and a *different* purged id is re-queued by another path.
        assert bucket.requeue(pulled) == 1
        assert [tx.tx_id for tx in bucket.peek_all()] == ["t0", "t2"]

    def test_compaction_drops_ghost_entries(self):
        bucket = Bucket(0)
        count = _COMPACT_MIN * 2 + 2
        for i in range(count):
            bucket.push(_tx(i))
        bucket.purge([f"t{i}" for i in range(count - 1)])
        # More ghosts than live entries: the queue must have been compacted.
        assert len(bucket._queue) == 1
        assert len(bucket) == 1
        assert bucket.pull_one().tx_id == f"t{count - 1}"

    def test_len_counts_live_entries_only(self):
        bucket = Bucket(0)
        for i in range(4):
            bucket.push(_tx(i))
        bucket.purge(["t0", "t1", "t2"])
        assert len(bucket) == 1
        # Physical queue still holds the ghosts (below compaction threshold).
        assert len(bucket._queue) == 4
