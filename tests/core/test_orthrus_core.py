"""Tests for the Orthrus consensus core (Algorithm 1).

The tests drive the core directly with hand-built blocks so every branch of
the hybrid execution path is exercised: partial-path payments, multi-payer
atomicity via escrow, contract execution at global-ordering time, the
non-blocking interaction between pending contracts and later payments, and
the Appendix B running example.
"""

import pytest

from repro.core.config import CoreConfig
from repro.core.orthrus import OrthrusCore
from repro.core.outcomes import ConfirmationPath, TxStatus
from repro.core.partition import LoadBalancedPartitioner
from repro.ledger.blocks import Block, SystemState
from repro.ledger.state import StateStore
from repro.ledger.transactions import contract_call, payment, simple_transfer


class Harness:
    """Drives one OrthrusCore with two instances and explicit account pinning."""

    def __init__(self, balances, placement, num_instances=2, epoch_length=1_000):
        config = CoreConfig(
            num_instances=num_instances,
            batch_size=8,
            epoch_length=epoch_length,
        )
        store = StateStore()
        store.load_accounts(balances)
        for key in ("slot", "slot-a", "slot-b"):
            store.create_shared(key, 0)
        self.core = OrthrusCore(config, store)
        self.core.partitioner = LoadBalancedPartitioner(num_instances, placement)
        self._next_sn = [0] * num_instances

    def submit(self, *txs):
        for tx in txs:
            self.core.submit(tx)

    def deliver(self, instance, txs, state=None):
        """Build and deliver the next block of ``instance`` containing ``txs``."""
        block = Block.create(
            instance=instance,
            sequence_number=self._next_sn[instance],
            transactions=txs,
            state=state or SystemState.initial(len(self._next_sn)),
            proposer=instance,
            rank=self.core.next_rank(),
        )
        self._next_sn[instance] += 1
        return self.core.on_block_delivered(block)

    def deliver_noop(self, instance):
        """Deliver an empty block (advances the Ladon bar)."""
        return self.deliver(instance, [])

    def settle(self, rounds=2):
        """Deliver no-op blocks on every instance to flush global ordering.

        Mirrors the ISS-style no-op filling / epoch closing that gives the
        rank-based global log liveness once client traffic stops.
        """
        outcomes = []
        for _ in range(rounds):
            for instance in range(len(self._next_sn)):
                outcomes.extend(self.deliver_noop(instance))
        return outcomes

    def balance(self, key):
        return self.core.store.balance_of(key)

    def status(self, tx):
        return self.core.status_of(tx.tx_id)


def default_harness(balances=None):
    return Harness(
        balances or {"alice": 100, "bob": 50, "carol": 0, "dave": 0},
        {"alice": 0, "carol": 0, "bob": 1, "dave": 1},
    )


class TestPartialPathPayments:
    def test_single_payer_payment_confirms_at_delivery(self):
        harness = default_harness()
        tx = simple_transfer("alice", "carol", 10, tx_id="p1")
        harness.submit(tx)
        outcomes = harness.deliver(0, [tx])
        assert len(outcomes) == 1
        assert outcomes[0].status is TxStatus.COMMITTED
        assert outcomes[0].path is ConfirmationPath.PARTIAL
        assert harness.balance("alice") == 90
        assert harness.balance("carol") == 10

    def test_insufficient_funds_payment_rejected(self):
        harness = default_harness({"alice": 5, "bob": 0, "carol": 0, "dave": 0})
        tx = simple_transfer("alice", "carol", 10, tx_id="p1")
        outcomes = harness.deliver(0, [tx])
        assert outcomes[0].status is TxStatus.REJECTED
        assert harness.balance("alice") == 5
        assert harness.balance("carol") == 0

    def test_sequential_payments_same_payer_respect_balance(self):
        harness = default_harness({"alice": 15, "bob": 0, "carol": 0, "dave": 0})
        tx1 = simple_transfer("alice", "carol", 10, tx_id="p1")
        tx2 = simple_transfer("alice", "bob", 10, tx_id="p2")
        outcomes = harness.deliver(0, [tx1, tx2])
        statuses = {o.tx.tx_id: o.status for o in outcomes}
        assert statuses["p1"] is TxStatus.COMMITTED
        assert statuses["p2"] is TxStatus.REJECTED
        assert harness.balance("alice") == 5

    def test_payments_in_different_instances_are_independent(self):
        harness = default_harness()
        tx_a = simple_transfer("alice", "carol", 10, tx_id="pa")
        tx_b = simple_transfer("bob", "dave", 10, tx_id="pb")
        outcomes_a = harness.deliver(0, [tx_a])
        outcomes_b = harness.deliver(1, [tx_b])
        assert outcomes_a[0].status is TxStatus.COMMITTED
        assert outcomes_b[0].status is TxStatus.COMMITTED

    def test_duplicate_block_delivery_is_ignored(self):
        harness = default_harness()
        tx = simple_transfer("alice", "carol", 10, tx_id="p1")
        block = Block.create(
            instance=0,
            sequence_number=0,
            transactions=[tx],
            state=SystemState.initial(2),
            proposer=0,
            rank=harness.core.next_rank(),
        )
        first = harness.core.on_block_delivered(block)
        second = harness.core.on_block_delivered(block)
        assert len(first) == 1
        assert second == []
        assert harness.balance("alice") == 90


class TestMultiPayerAtomicity:
    def test_confirmation_waits_for_all_payers(self):
        harness = default_harness()
        tx = payment({"alice": 10, "bob": 5}, {"carol": 15}, tx_id="mp")
        harness.submit(tx)
        first = harness.deliver(0, [tx])
        assert first == []  # only Alice's escrow so far
        assert harness.balance("alice") == 90
        assert harness.balance("carol") == 0
        assert harness.status(tx) is TxStatus.PENDING
        second = harness.deliver(1, [tx])
        assert len(second) == 1
        assert second[0].status is TxStatus.COMMITTED
        assert harness.balance("bob") == 45
        assert harness.balance("carol") == 15

    def test_failed_payer_aborts_and_refunds_the_other(self):
        harness = default_harness({"alice": 100, "bob": 1, "carol": 0, "dave": 0})
        tx = payment({"alice": 10, "bob": 5}, {"carol": 15}, tx_id="mp")
        harness.deliver(0, [tx])
        assert harness.balance("alice") == 90  # escrowed
        outcomes = harness.deliver(1, [tx])
        assert outcomes[0].status is TxStatus.REJECTED
        assert harness.balance("alice") == 100  # refunded
        assert harness.balance("bob") == 1
        assert harness.balance("carol") == 0
        assert len(harness.core.escrow) == 0

    def test_abort_prevents_later_escrow_from_other_instance(self):
        harness = default_harness({"alice": 5, "bob": 50, "carol": 0, "dave": 0})
        tx = payment({"alice": 10, "bob": 5}, {"carol": 15}, tx_id="mp")
        # Alice's instance processes first and fails the escrow outright.
        outcomes = harness.deliver(0, [tx])
        assert outcomes[0].status is TxStatus.REJECTED
        # Bob's instance later includes the same transaction; it must not
        # re-escrow or produce another outcome.
        later = harness.deliver(1, [tx])
        assert later == []
        assert harness.balance("bob") == 50


class TestContractTransactions:
    def test_contract_requires_global_ordering(self):
        harness = default_harness()
        # Bob is assigned to instance 1, so the contract block's ordering
        # index (rank, 1) cannot be confirmed until instance 0 delivers a
        # higher-ranked block (the tie-break favours lower instance indices).
        ctx = contract_call({"bob": 10}, {"slot": 7}, tx_id="c1")
        outcomes = harness.deliver(1, [ctx])
        assert outcomes == []
        assert harness.balance("bob") == 40  # escrowed, not yet committed
        assert harness.core.store.balance_of("slot") == 0
        # Once instance 0 delivers, the block is globally ordered and the
        # contract executes.
        outcomes = harness.deliver_noop(0)
        assert len(outcomes) == 1
        assert outcomes[0].status is TxStatus.COMMITTED
        assert outcomes[0].path is ConfirmationPath.GLOBAL
        assert harness.core.store.balance_of("slot") == 7

    def test_contract_with_insufficient_funds_rejected_at_partial_path(self):
        harness = default_harness({"alice": 5, "bob": 0, "carol": 0, "dave": 0})
        ctx = contract_call({"alice": 10}, {"slot": 7}, tx_id="c1")
        outcomes = harness.deliver(0, [ctx])
        assert outcomes[0].status is TxStatus.REJECTED
        harness.settle()
        assert harness.core.store.balance_of("slot") == 0
        assert harness.balance("alice") == 5

    def test_pending_contract_does_not_block_later_payment(self):
        # Solution-II: the contract's decrement is escrowed, so the payment
        # right behind it is evaluated against the reduced balance and
        # confirms immediately, before the contract is globally ordered.
        harness = default_harness({"alice": 0, "bob": 30, "carol": 0, "dave": 0})
        ctx = contract_call({"bob": 10}, {"slot": 1}, tx_id="c1")
        pay = simple_transfer("bob", "carol", 15, tx_id="p1")
        outcomes = harness.deliver(1, [ctx, pay])
        statuses = {o.tx.tx_id: o.status for o in outcomes}
        assert statuses == {"p1": TxStatus.COMMITTED}
        assert harness.balance("bob") == 5
        assert harness.balance("carol") == 15
        assert harness.status(ctx) is TxStatus.PENDING
        # The contract later confirms through the global path.
        outcomes = harness.settle()
        assert {o.tx.tx_id for o in outcomes} == {"c1"}

    def test_two_caller_contract_executes_once_at_last_occurrence(self):
        harness = default_harness()
        ctx = contract_call({"alice": 10, "bob": 5}, {"slot": 3}, tx_id="c2")
        harness.deliver(0, [ctx])
        outcomes = harness.deliver(1, [ctx])
        outcomes += harness.settle()
        # The contract executes exactly once, at its last occurrence in the
        # global log, and both callers are debited.
        committed = [o for o in outcomes if o.tx.tx_id == "c2"]
        assert len(committed) == 1
        assert committed[0].status is TxStatus.COMMITTED
        assert harness.balance("alice") == 90
        assert harness.balance("bob") == 45
        assert harness.core.store.balance_of("slot") == 3

    def test_contract_ordering_is_sequential(self):
        harness = default_harness()
        ctx1 = contract_call({"alice": 1}, {"slot": 111}, tx_id="c1")
        ctx2 = contract_call({"bob": 1}, {"slot": 222}, tx_id="c2")
        harness.deliver(0, [ctx1])
        harness.deliver(1, [ctx2])
        harness.settle()
        # Both executed; the final value is whichever was globally later.
        assert harness.core.store.balance_of("slot") == 222
        assert harness.status(ctx1) is TxStatus.COMMITTED
        assert harness.status(ctx2) is TxStatus.COMMITTED


class TestStateReferences:
    def test_block_waits_for_referenced_state(self):
        harness = default_harness()
        fund = simple_transfer("alice", "dave", 20, tx_id="fund")
        spend = simple_transfer("dave", "carol", 15, tx_id="spend")
        # Instance 1's block references instance 0's block 0 (the funding tx),
        # exactly like Appendix B's tx1 referencing S = {0, ⊥}.
        dependent_state = SystemState((-1, -1)).advanced(0, 0)
        outcomes = harness.deliver(1, [spend], state=dependent_state)
        assert outcomes == []  # waits: the funding block has not arrived
        assert harness.status(spend) is TxStatus.PENDING
        outcomes = harness.deliver(0, [fund])
        statuses = {o.tx.tx_id: o.status for o in outcomes}
        assert statuses["fund"] is TxStatus.COMMITTED
        assert statuses["spend"] is TxStatus.COMMITTED
        assert harness.balance("carol") == 15
        assert harness.balance("dave") == 5


class TestAppendixBExample:
    """The running example of Appendix B: two instances, Alice/Bob/Carol."""

    def build(self):
        return Harness(
            {"alice": 4, "bob": 0, "carol": 0},
            {"alice": 0, "bob": 1, "carol": 0},
        )

    def test_running_example(self):
        harness = self.build()
        # tx0: Alice -> Bob $2, single payer, instance 0, block (0, 0).
        tx0 = simple_transfer("alice", "bob", 2, tx_id="tx0")
        outcomes = harness.deliver(0, [tx0])
        assert outcomes[0].status is TxStatus.COMMITTED
        assert harness.balance("alice") == 2
        assert harness.balance("bob") == 2

        # tx1: Alice and Bob each send $1 to Carol.  It appears in block (0,1)
        # and block (1,0); the latter references block (0,0) so Bob's transfer
        # builds on the funds received from tx0.
        tx1 = payment({"alice": 1, "bob": 1}, {"carol": 2}, tx_id="tx1")
        first = harness.deliver(0, [tx1])
        assert first == []
        assert harness.balance("alice") == 1  # escrowed
        second = harness.deliver(
            1, [tx1], state=SystemState((-1, -1)).advanced(0, 0)
        )
        assert second[0].status is TxStatus.COMMITTED
        assert harness.balance("carol") == 2
        assert harness.balance("bob") == 1

        # tx2: Alice and Bob jointly call a contract costing $1 each.
        tx2 = contract_call({"alice": 1, "bob": 1}, {"slot": 9}, tx_id="tx2")
        harness.deliver(0, [tx2])
        outcomes = harness.deliver(1, [tx2])
        outcomes += harness.settle()
        assert {o.tx.tx_id for o in outcomes} == {"tx2"}
        assert outcomes[0].status is TxStatus.COMMITTED
        assert harness.balance("alice") == 0
        assert harness.balance("bob") == 0
        assert harness.core.store.balance_of("slot") == 9


class TestEpochs:
    def test_checkpoint_created_when_epoch_completes(self):
        harness = Harness(
            {"alice": 100, "bob": 100, "carol": 0, "dave": 0},
            {"alice": 0, "carol": 0, "bob": 1, "dave": 1},
            epoch_length=1,
        )
        tx_a = simple_transfer("alice", "carol", 1, tx_id="a")
        tx_b = simple_transfer("bob", "dave", 1, tx_id="b")
        harness.deliver(0, [tx_a])
        assert harness.core.pending_checkpoints == []
        harness.deliver(1, [tx_b])
        assert len(harness.core.pending_checkpoints) == 1
        checkpoint = harness.core.pending_checkpoints[0]
        assert checkpoint.epoch == 0
        assert checkpoint.state_digest == harness.core.store.state_digest()


class TestCounters:
    def test_path_counters_track_confirmations(self):
        harness = default_harness()
        pay = simple_transfer("alice", "carol", 1, tx_id="p")
        ctx = contract_call({"bob": 1}, {"slot": 5}, tx_id="c")
        harness.deliver(0, [pay])
        harness.deliver(1, [ctx])
        harness.deliver_noop(0)
        harness.deliver_noop(1)
        assert harness.core.partial_confirmations == 1
        assert harness.core.global_confirmations == 1

    def test_submit_validates_and_routes_to_buckets(self):
        harness = default_harness()
        tx = payment({"alice": 2, "bob": 2}, {"carol": 4}, tx_id="mp")
        buckets = harness.core.submit(tx)
        assert sorted(buckets) == [0, 1]
        assert harness.core.bucket_size(0) == 1
        assert harness.core.bucket_size(1) == 1
        assert harness.core.total_pending() == 2

    def test_submit_rejects_invalid_transaction(self):
        from repro.errors import ValidationError

        harness = default_harness()
        with pytest.raises(ValidationError):
            harness.core.submit(payment({"alice": 5}, {"carol": 3}, tx_id="bad"))


class TestBatchSelectionStarvation:
    """Regression: an unaffordable prefix must not starve valid transactions.

    ``select_batch`` scans a bounded window (``max(limit * 4, 16)``) at the
    head of the bucket.  Before the fix, unaffordable transactions were
    requeued at the *front*, so a persistent prefix of them (payer drained
    through another instance) was re-scanned forever and an affordable
    transaction queued behind the window could never be proposed.
    """

    def make_harness(self):
        # "poor" holds nothing; "alice" can pay.  Everything pins to
        # instance 0 so a single bucket carries the whole queue.
        return Harness(
            {"alice": 100, "poor": 0, "bob": 0},
            {"alice": 0, "poor": 0, "bob": 0},
            num_instances=1,
        )

    def submit_starved_workload(self, harness):
        blockers = [
            simple_transfer("poor", "bob", 5, tx_id=f"blocked-{i}")
            for i in range(20)  # > the scan window of 16
        ]
        starved = simple_transfer("alice", "bob", 10, tx_id="starved")
        harness.submit(*blockers, starved)
        return starved

    def test_affordable_tx_behind_unaffordable_prefix_is_selected(self):
        harness = self.make_harness()
        starved = self.submit_starved_workload(harness)
        selected: list[str] = []
        for _ in range(10):
            batch = harness.core.select_batch(0, 4)
            selected.extend(tx.tx_id for tx in batch)
            if starved.tx_id in selected:
                break
        assert starved.tx_id in selected, (
            "affordable transaction starved behind an unaffordable prefix"
        )

    def test_starved_tx_commits_end_to_end(self):
        harness = self.make_harness()
        starved = self.submit_starved_workload(harness)
        for _ in range(10):
            batch = harness.core.select_batch(0, 4)
            harness.deliver(0, batch)
            if harness.status(starved).terminal:
                break
        assert harness.status(starved) is TxStatus.COMMITTED
        assert harness.balance("bob") == 10

    def test_unaffordable_txs_stay_queued_for_later_funding(self):
        harness = self.make_harness()
        self.submit_starved_workload(harness)
        for _ in range(5):
            harness.deliver(0, harness.core.select_batch(0, 4))
        # The blocked transactions were deferred, not dropped.
        assert harness.core.bucket_size(0) == 20
        # Fund the drained payer: the deferred transactions become valid.
        harness.deliver(0, [simple_transfer("alice", "poor", 90, tx_id="refill")])
        committed = 0
        for _ in range(20):
            batch = harness.core.select_batch(0, 4)
            if not batch:
                break
            for outcome in harness.deliver(0, batch):
                committed += outcome.status is TxStatus.COMMITTED
        # 90 funds 18 of the 20 blocked 5-unit transfers.
        assert committed == 18
