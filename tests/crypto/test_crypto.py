"""Tests for digests, the PKI and simulated signatures."""

import pytest

from repro.crypto.digest import canonical_bytes, combine_digests, digest, sha256_hex
from repro.crypto.keys import KeyPair, PublicKeyInfrastructure
from repro.crypto.signatures import (
    CryptoCostModel,
    QuorumCertificate,
    Signature,
    sign,
    verify,
)
from repro.errors import ConfigurationError
from repro.ledger.transactions import simple_transfer


class TestDigest:
    def test_digest_is_deterministic(self):
        assert digest({"a": 1, "b": [2, 3]}) == digest({"b": [2, 3], "a": 1})

    def test_digest_distinguishes_values(self):
        assert digest({"a": 1}) != digest({"a": 2})

    def test_digest_uses_digest_fields_when_available(self):
        tx1 = simple_transfer("alice", "bob", 5, tx_id="t1")
        tx2 = simple_transfer("alice", "bob", 5, tx_id="t1")
        assert digest(tx1) == digest(tx2)
        tx3 = simple_transfer("alice", "bob", 6, tx_id="t1")
        assert digest(tx1) != digest(tx3)

    def test_canonical_bytes_handles_unserialisable_objects(self):
        class Weird:
            pass

        assert isinstance(canonical_bytes(Weird()), bytes)

    def test_combine_digests_order_sensitive(self):
        assert combine_digests(["a", "b"]) != combine_digests(["b", "a"])

    def test_sha256_hex_known_value(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )


class TestPKI:
    def test_enroll_is_idempotent(self):
        pki = PublicKeyInfrastructure(seed=1)
        first = pki.enroll("replica-0")
        second = pki.enroll("replica-0")
        assert first.public_key == second.public_key

    def test_key_derivation_depends_on_seed_and_holder(self):
        a = KeyPair.generate("r0", seed=1)
        b = KeyPair.generate("r0", seed=2)
        c = KeyPair.generate("r1", seed=1)
        assert a.public_key != b.public_key
        assert a.public_key != c.public_key

    def test_lookup_unknown_holder_raises(self):
        pki = PublicKeyInfrastructure()
        with pytest.raises(ConfigurationError):
            pki.public_key_of("ghost")

    def test_holders_listing_and_contains(self):
        pki = PublicKeyInfrastructure()
        pki.enroll("b")
        pki.enroll("a")
        assert pki.holders() == ["a", "b"]
        assert "a" in pki
        assert "zzz" not in pki


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        pki = PublicKeyInfrastructure(seed=5)
        keypair = pki.enroll("alice")
        message = {"transfer": 10}
        signature = sign(keypair, message)
        assert verify(pki, signature, message)

    def test_verification_fails_for_tampered_message(self):
        pki = PublicKeyInfrastructure(seed=5)
        keypair = pki.enroll("alice")
        signature = sign(keypair, {"transfer": 10})
        assert not verify(pki, signature, {"transfer": 11})

    def test_verification_fails_for_unenrolled_signer(self):
        pki = PublicKeyInfrastructure(seed=5)
        rogue = KeyPair.generate("mallory", seed=99)
        signature = sign(rogue, "msg")
        assert not verify(pki, signature, "msg")

    def test_verification_fails_for_forged_value(self):
        pki = PublicKeyInfrastructure(seed=5)
        keypair = pki.enroll("alice")
        signature = sign(keypair, "msg")
        forged = Signature(
            signer="alice", message_digest=signature.message_digest, value="0" * 64
        )
        assert not verify(pki, forged, "msg")


class TestQuorumCertificate:
    def _sig(self, pki, holder, message):
        return sign(pki.enroll(holder), message)

    def test_certificate_completes_at_threshold(self):
        pki = PublicKeyInfrastructure()
        message = "block-1"
        cert = QuorumCertificate(message_digest=digest(message), threshold=3)
        for holder in ("r0", "r1"):
            assert cert.add(self._sig(pki, holder, message))
        assert not cert.complete
        assert cert.add(self._sig(pki, "r2", message))
        assert cert.complete
        assert cert.signers() == ["r0", "r1", "r2"]

    def test_duplicate_signers_rejected(self):
        pki = PublicKeyInfrastructure()
        message = "block-1"
        cert = QuorumCertificate(message_digest=digest(message), threshold=2)
        assert cert.add(self._sig(pki, "r0", message))
        assert not cert.add(self._sig(pki, "r0", message))
        assert cert.count == 1

    def test_mismatched_digest_rejected(self):
        pki = PublicKeyInfrastructure()
        cert = QuorumCertificate(message_digest=digest("block-1"), threshold=2)
        assert not cert.add(self._sig(pki, "r0", "other-block"))


class TestCryptoCostModel:
    def test_batch_verify_cost_scales(self):
        model = CryptoCostModel(verify_cost=1e-4)
        assert model.batch_verify_cost(10) == pytest.approx(1e-3)
        assert model.batch_verify_cost(-5) == 0.0

    def test_block_hash_cost(self):
        model = CryptoCostModel(hash_cost_per_kb=1e-6)
        assert model.block_hash_cost(2048) == pytest.approx(2e-6)
