"""The precompiled canonical renderers and digest memoization.

Hot classes (``Transaction``, ``Block``, ``LedgerObject``) render their
canonical bytes through hand-written templates instead of the generic
sorted-key JSON encoder.  These tests pin the invariant everything depends
on: the template output is byte-identical to the reference rendering of
``digest_fields()``, and memoized digests always equal a fresh recomputation.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.digest import (
    DigestAccumulator,
    canonical_bytes,
    combine_digests,
    digest,
    sha256_hex,
)
from repro.ledger.blocks import Block, SystemState
from repro.ledger.objects import LedgerObject, ObjectOperation, ObjectType, OperationKind
from repro.ledger.state import StateStore
from repro.ledger.transactions import Transaction, TransactionType


def reference_bytes(value) -> bytes:
    """The pre-template rendering: sorted-key JSON of ``digest_fields()``."""
    return json.dumps(value.digest_fields(), sort_keys=True).encode("utf-8")


keys = st.text(max_size=16)  # includes quotes, backslashes, non-ASCII, empty

operations = st.builds(
    ObjectOperation,
    key=keys,
    kind=st.sampled_from(list(OperationKind)),
    amount=st.integers(min_value=-(2**40), max_value=2**40),
    object_type=st.sampled_from(list(ObjectType)),
)

transactions = st.builds(
    Transaction,
    tx_id=st.text(min_size=1, max_size=24),
    operations=st.lists(operations, max_size=4).map(tuple),
    tx_type=st.sampled_from(list(TransactionType)),
)

blocks = st.builds(
    Block,
    instance=st.integers(min_value=0, max_value=2**31),
    sequence_number=st.integers(min_value=0, max_value=2**31),
    transactions=st.lists(transactions, max_size=3).map(tuple),
    state=st.builds(
        SystemState,
        sequence_numbers=st.lists(
            st.integers(min_value=-1, max_value=2**31), min_size=1, max_size=6
        ).map(tuple),
    ),
    proposer=st.integers(min_value=0, max_value=2**31),
    epoch=st.integers(min_value=0, max_value=2**31),
    rank=st.none() | st.integers(min_value=0, max_value=2**40),
)

ledger_objects = st.builds(
    LedgerObject,
    key=keys,
    value=st.integers(min_value=-(2**62), max_value=2**62),
    object_type=st.sampled_from(list(ObjectType)),
    condition=st.integers(min_value=-(2**62), max_value=0),
)


class TestCanonicalRenderEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(tx=transactions)
    def test_transaction_render_matches_reference(self, tx):
        assert tx.canonical_render() == reference_bytes(tx)
        assert canonical_bytes(tx) == reference_bytes(tx)

    @settings(max_examples=200, deadline=None)
    @given(block=blocks)
    def test_block_render_matches_reference(self, block):
        assert block.canonical_render() == reference_bytes(block)
        assert canonical_bytes(block) == reference_bytes(block)

    @settings(max_examples=300, deadline=None)
    @given(obj=ledger_objects)
    def test_ledger_object_render_matches_reference(self, obj):
        assert obj.canonical_render() == reference_bytes(obj)
        assert canonical_bytes(obj) == reference_bytes(obj)


class TestDigestMemoization:
    @settings(max_examples=200, deadline=None)
    @given(tx=transactions)
    def test_transaction_digest_memo_equals_recomputation(self, tx):
        memoized = tx.digest
        assert memoized == tx.digest  # second access serves the memo
        assert memoized == sha256_hex(reference_bytes(tx))

    @settings(max_examples=100, deadline=None)
    @given(block=blocks)
    def test_block_digest_memo_equals_recomputation(self, block):
        memoized = block.digest
        assert memoized == block.digest
        assert memoized == sha256_hex(reference_bytes(block))

    def test_memo_is_per_instance(self):
        from repro.ledger.transactions import simple_transfer

        a = simple_transfer("x", "y", 1, tx_id="t1")
        b = simple_transfer("x", "y", 2, tx_id="t1")  # same id, different amount
        assert a.digest != b.digest  # content digests, not id digests

    def test_memo_not_shared_through_class_attribute(self):
        from repro.ledger.transactions import simple_transfer

        first = simple_transfer("x", "y", 1, tx_id="ta")
        _ = first.digest
        second = simple_transfer("x", "y", 1, tx_id="tb")
        assert second.digest != first.digest


class TestDigestAccumulator:
    @settings(max_examples=200, deadline=None)
    @given(items=st.lists(st.text(max_size=12)))
    def test_accumulator_matches_combine_digests(self, items):
        accumulator = DigestAccumulator()
        for item in items:
            accumulator.append(item)
        assert accumulator.hexdigest() == combine_digests(items)

    def test_matches_legacy_joined_rendering(self):
        # combine_digests has always hashed "|".join(items); pin that.
        assert combine_digests(["a", "b", "c"]) == sha256_hex(b"a|b|c")
        assert combine_digests([]) == sha256_hex(b"")


class TestIncrementalStateDigest:
    def _reference(self, store: StateStore) -> str:
        return combine_digests(
            [digest(store.get(key)) for key in sorted(store.keys())]
        )

    def test_matches_reference_through_mutations(self):
        store = StateStore()
        store.load_accounts({"alice": 10, "bob": 5})
        assert store.state_digest() == self._reference(store)
        store.credit("alice", 3)
        assert store.state_digest() == self._reference(store)
        store.debit("bob", 2)
        assert store.state_digest() == self._reference(store)
        store.create_shared("slot", 7)
        assert store.state_digest() == self._reference(store)
        store.assign("slot", 9)
        assert store.state_digest() == self._reference(store)

    def test_account_reset_invalidates_cached_digest(self):
        store = StateStore()
        store.create_account("alice", 10)
        before = store.state_digest()
        # Reset to a different balance: version restarts at 0, so a naive
        # (version -> digest) cache would serve the stale entry.
        store.create_account("alice", 99)
        after = store.state_digest()
        assert after != before
        assert after == self._reference(store)

    def test_digest_stable_when_unchanged(self):
        store = StateStore()
        store.load_accounts({"a": 1, "b": 2})
        assert store.state_digest() == store.state_digest()

    def test_copy_digests_independently(self):
        store = StateStore()
        store.load_accounts({"a": 1})
        clone = store.copy()
        assert clone.state_digest() == store.state_digest()
        clone.credit("a", 5)
        assert clone.state_digest() != store.state_digest()
        assert store.state_digest() == self._reference(store)
