"""Smoke tests for every example script.

The examples are the repository's front door and previously ran under no
test, so an API change could rot them silently.  Each one is executed as a
real subprocess — exactly how a reader would run it — and must exit cleanly
with its expected headline output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"

#: script name -> substring its output must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "Orthrus quickstart",
    "smart_contract_escrow.py": "tx0",
    "fault_tolerant_cluster.py": "honest replicas agree on state: True",
    "payment_network.py": "Payment network",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )


def test_every_example_is_covered():
    """A new example script must be added to this smoke suite."""
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} exited with {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert EXPECTED_OUTPUT[name] in result.stdout
    assert "Traceback" not in result.stderr
