"""Property-based tests for the global-ordering engines.

The key invariants are the ones the paper's safety argument leans on:
every honest replica computes the same global order from the same set of
delivered blocks regardless of delivery interleaving (agreement), the order
respects each engine's ordering key (consistency), and no block is ordered
twice or dropped (integrity).
"""

from hypothesis import given, settings, strategies as st

from repro.ledger.blocks import Block, SystemState
from repro.ordering.base import (
    CROSS_INSTANCE_PREFIX,
    NO_CONFLICTS,
    UNKNOWN_CONFLICTS,
    BlockConflicts,
    OrderingIndex,
)
from repro.ordering.dependency import DependencyGlobalOrderer
from repro.ordering.dqbft import DQBFTGlobalOrderer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer

NUM_INSTANCES = 3


def make_block(instance, sn, rank=None):
    return Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=[],
        state=SystemState.initial(NUM_INSTANCES),
        proposer=instance,
        rank=rank,
    )


@st.composite
def delivered_block_sets(draw):
    """Per-instance contiguous block prefixes with globally increasing ranks."""
    lengths = [
        draw(st.integers(min_value=0, max_value=6)) for _ in range(NUM_INSTANCES)
    ]
    blocks = []
    rank = 0
    remaining = {i: 0 for i in range(NUM_INSTANCES)}
    # Interleave the instances' next sequence numbers in a random but
    # rank-monotone creation order, as the protocol guarantees.
    work = [(i, sn) for i in range(NUM_INSTANCES) for sn in range(lengths[i])]
    order = draw(st.permutations(work))
    for instance, _ in order:
        sn = remaining[instance]
        remaining[instance] += 1
        rank += draw(st.integers(min_value=1, max_value=3))
        blocks.append(make_block(instance, sn, rank=rank))
    return blocks


@st.composite
def deliveries_with_permutation(draw):
    blocks = draw(delivered_block_sets())
    permutation = draw(st.permutations(blocks))
    return blocks, permutation


def per_instance_in_order(sequence):
    """Deliver blocks to an orderer respecting per-instance sequence order."""
    seen = {i: -1 for i in range(NUM_INSTANCES)}
    ready = []
    pending = list(sequence)
    while pending:
        progressed = False
        for block in list(pending):
            if block.sequence_number == seen[block.instance] + 1:
                ready.append(block)
                seen[block.instance] = block.sequence_number
                pending.remove(block)
                progressed = True
        if not progressed:
            break
    return ready


class TestLadonProperties:
    @given(deliveries_with_permutation())
    @settings(max_examples=120, deadline=None)
    def test_agreement_across_delivery_interleavings(self, data):
        blocks, permutation = data
        # SB delivers each instance's blocks in sequence order; across
        # instances the interleaving is arbitrary.
        first_order = per_instance_in_order(blocks)
        second_order = per_instance_in_order(permutation)
        orderer_a = LadonGlobalOrderer(NUM_INSTANCES)
        orderer_b = LadonGlobalOrderer(NUM_INSTANCES)
        for block in first_order:
            orderer_a.on_deliver(block)
        for block in second_order:
            orderer_b.on_deliver(block)
        ids_a = [b.block_id for b in orderer_a.global_log]
        ids_b = [b.block_id for b in orderer_b.global_log]
        # Both replicas ordered the same prefix in the same order (one may
        # have ordered more if its interleaving advanced the bar further, but
        # the common prefix must agree).
        common = min(len(ids_a), len(ids_b))
        assert ids_a[:common] == ids_b[:common]

    @given(delivered_block_sets())
    @settings(max_examples=120, deadline=None)
    def test_global_log_sorted_by_ordering_index_without_duplicates(self, blocks):
        orderer = LadonGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer.on_deliver(block)
        indices = [OrderingIndex.of(b) for b in orderer.global_log]
        assert indices == sorted(indices)
        ids = [b.block_id for b in orderer.global_log]
        assert len(ids) == len(set(ids))

    @given(delivered_block_sets())
    @settings(max_examples=120, deadline=None)
    def test_ordered_plus_pending_equals_delivered(self, blocks):
        orderer = LadonGlobalOrderer(NUM_INSTANCES)
        delivered = per_instance_in_order(blocks)
        for block in delivered:
            orderer.on_deliver(block)
        assert orderer.ordered_count + orderer.pending_count() == len(delivered)


class TestPredeterminedProperties:
    @given(deliveries_with_permutation())
    @settings(max_examples=120, deadline=None)
    def test_order_is_position_sorted_and_agreement_holds(self, data):
        blocks, permutation = data
        orderer_a = PredeterminedGlobalOrderer(NUM_INSTANCES)
        orderer_b = PredeterminedGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer_a.on_deliver(block)
        for block in per_instance_in_order(permutation):
            orderer_b.on_deliver(block)
        positions_a = [orderer_a.global_position(b) for b in orderer_a.global_log]
        assert positions_a == sorted(positions_a)
        ids_a = [b.block_id for b in orderer_a.global_log]
        ids_b = [b.block_id for b in orderer_b.global_log]
        common = min(len(ids_a), len(ids_b))
        assert ids_a[:common] == ids_b[:common]

    @given(delivered_block_sets())
    @settings(max_examples=120, deadline=None)
    def test_log_is_gapless_prefix(self, blocks):
        orderer = PredeterminedGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer.on_deliver(block)
        positions = [orderer.global_position(b) for b in orderer.global_log]
        assert positions == list(range(len(positions)))


class TestDQBFTProperties:
    @given(delivered_block_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_execution_order_matches_decision_order(self, blocks, rng):
        orderer = DQBFTGlobalOrderer(NUM_INSTANCES)
        delivered = per_instance_in_order(blocks)
        decision_order = list(delivered)
        rng.shuffle(decision_order)
        for block in delivered:
            orderer.on_deliver(block)
        released = []
        for block in decision_order:
            released.extend(orderer.on_order_decision([block.block_id]))
        assert [b.block_id for b in released] == [b.block_id for b in decision_order]


@st.composite
def tied_rank_block_sets(draw):
    """Per-instance strictly increasing ranks, cross-instance ties allowed.

    ``delivered_block_sets`` assigns globally unique ranks, which can never
    exercise the bar's ``(rank, instance)`` tie-break.  Here each instance
    advances its own rank counter independently with small steps, so two
    instances frequently sit on the same rank — the regime the Ladon bar
    boundary audit is about.
    """
    blocks = []
    for instance in range(NUM_INSTANCES):
        rank = 0
        for sn in range(draw(st.integers(min_value=0, max_value=6))):
            rank += draw(st.integers(min_value=1, max_value=2))
            blocks.append(make_block(instance, sn, rank=rank))
    return blocks


def straggler_interleaving(blocks, straggler):
    """Deliver the straggler instance's blocks only after everyone else's."""
    fast = [b for b in blocks if b.instance != straggler]
    slow = [b for b in blocks if b.instance == straggler]
    key = lambda b: (b.sequence_number, b.instance)  # noqa: E731
    return sorted(fast, key=key) + sorted(slow, key=key)


def reference_released(delivered, frontier_ranks):
    """Brute-force reference for the safely releasable prefix.

    A delivered block is safely ordered iff its index precedes the smallest
    index any *future* block could still take: per-instance ranks are
    strictly increasing, so instance ``i`` can still produce at best
    ``(frontier_ranks[i] + 1, i)``.  Recomputed from scratch on every
    delivery — structurally independent of the heap implementation.
    """
    bar = min(
        OrderingIndex(rank=frontier_ranks[i] + 1, instance=i)
        for i in range(NUM_INSTANCES)
    )
    ready = [b for b in delivered if OrderingIndex.of(b) < bar]
    ready.sort(key=lambda b: (OrderingIndex.of(b), b.sequence_number))
    return [b.block_id for b in ready]


class TestLadonBarBoundary:
    """Audit of the ``index == bar`` boundary (issue: off-by-one suspicion).

    The released prefix after *every* delivery must equal the brute-force
    reference, in particular when instance frontiers tie on rank and under
    straggler-shaped interleavings.  These tests pin the audited conclusion:
    the boundary is exact (no block releasable by the reference is held back,
    none is released early).
    """

    def _check_against_reference(self, delivery_order):
        orderer = LadonGlobalOrderer(NUM_INSTANCES)
        delivered = []
        frontier_ranks = [0] * NUM_INSTANCES
        for block in delivery_order:
            orderer.on_deliver(block)
            delivered.append(block)
            frontier_ranks[block.instance] = max(
                frontier_ranks[block.instance], block.rank
            )
            got = [b.block_id for b in orderer.global_log]
            assert got == reference_released(delivered, frontier_ranks)
        assert orderer.stats.rank_regressions == 0

    @given(tied_rank_block_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_release_matches_brute_force_reference(self, blocks, rng):
        queues = {
            i: sorted(
                (b for b in blocks if b.instance == i),
                key=lambda b: b.sequence_number,
            )
            for i in range(NUM_INSTANCES)
        }
        order = []
        while any(queues.values()):
            instance = rng.choice([i for i in range(NUM_INSTANCES) if queues[i]])
            order.append(queues[instance].pop(0))
        self._check_against_reference(order)

    @given(tied_rank_block_sets(), st.integers(min_value=0, max_value=NUM_INSTANCES - 1))
    @settings(max_examples=150, deadline=None)
    def test_straggler_shaped_interleavings_match_reference(self, blocks, straggler):
        self._check_against_reference(straggler_interleaving(blocks, straggler))

    @given(tied_rank_block_sets(), st.integers(min_value=0, max_value=NUM_INSTANCES - 1))
    @settings(max_examples=100, deadline=None)
    def test_straggler_vs_uniform_interleaving_agree(self, blocks, straggler):
        orderer_a = LadonGlobalOrderer(NUM_INSTANCES)
        orderer_b = LadonGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer_a.on_deliver(block)
        for block in straggler_interleaving(blocks, straggler):
            orderer_b.on_deliver(block)
        ids_a = [b.block_id for b in orderer_a.global_log]
        ids_b = [b.block_id for b in orderer_b.global_log]
        common = min(len(ids_a), len(ids_b))
        assert ids_a[:common] == ids_b[:common]

    def test_rank_regression_is_detected(self):
        # A post-view-change leader assigning a rank below a re-proposed
        # block's rank violates the monotonicity precondition; the orderer
        # counts it so fault tests can assert it never happens.
        orderer = LadonGlobalOrderer(NUM_INSTANCES)
        orderer.on_deliver(make_block(0, 0, rank=10))
        orderer.on_deliver(make_block(0, 1, rank=3))
        assert orderer.stats.rank_regressions == 1


# -- dependency orderer: conflict-modelled workloads --------------------------------

#: Owned-object universe; ``acct-n`` is assigned to instance ``n % m``, the
#: same deterministic shape a hash partitioner produces.
OWNED_KEYS = tuple(f"acct-{n}" for n in range(6))
#: Shared contract objects: global for every instance.
SHARED_KEYS = ("obj-0", "obj-1")


def key_owner(key):
    return int(key.rsplit("-", 1)[1]) % NUM_INSTANCES


def build_conflicts(instance, owned, shared):
    """Conflict metadata exactly as ``derive_conflicts`` would classify it."""
    local = frozenset(k for k in owned if key_owner(k) == instance)
    cross = frozenset(
        CROSS_INSTANCE_PREFIX + k for k in owned if key_owner(k) != instance
    )
    return BlockConflicts(local, cross | frozenset(shared))


@st.composite
def conflicted_block_sets(draw):
    """Tied-rank block sets with per-block modelled conflict metadata."""
    blocks = draw(tied_rank_block_sets())
    conflicts = {}
    for block in blocks:
        owned = draw(st.frozensets(st.sampled_from(OWNED_KEYS), max_size=3))
        shared = draw(st.frozensets(st.sampled_from(SHARED_KEYS), max_size=1))
        conflicts[block.block_id] = build_conflicts(block.instance, owned, shared)
    return blocks, conflicts


def random_interleaving(blocks, rng):
    """Arbitrary cross-instance interleaving respecting per-instance order."""
    queues = {
        i: sorted(
            (b for b in blocks if b.instance == i), key=lambda b: b.sequence_number
        )
        for i in range(NUM_INSTANCES)
    }
    order = []
    while any(queues.values()):
        instance = rng.choice([i for i in range(NUM_INSTANCES) if queues[i]])
        order.append(queues[instance].pop(0))
    return order


def run_dependency(delivery_order, conflicts):
    orderer = DependencyGlobalOrderer(NUM_INSTANCES)
    for block in delivery_order:
        orderer.on_deliver(block, conflicts[block.block_id])
    return orderer


class TestDependencyEquivalence:
    """On fully conflicting input the dependency orderer *is* Ladon.

    Every block carries a global key, so nothing escapes the bar and the
    release sequence must match Ladon's delivery-for-delivery — the
    degeneration the safety argument in ``ordering/dependency.py`` leans on.
    """

    def _assert_stepwise_equal(self, delivery_order, conflicts_for):
        dep = DependencyGlobalOrderer(NUM_INSTANCES)
        ladon = LadonGlobalOrderer(NUM_INSTANCES)
        for block in delivery_order:
            got = [b.block_id for b in dep.on_deliver(block, conflicts_for(block))]
            want = [b.block_id for b in ladon.on_deliver(block)]
            assert got == want
        assert dep.pending_count() == ladon.pending_count()

    @given(tied_rank_block_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_hot_key_workload_matches_ladon(self, blocks, rng):
        hot = BlockConflicts(frozenset(), frozenset(("obj-hot",)))
        order = random_interleaving(blocks, rng)
        self._assert_stepwise_equal(order, lambda block: hot)

    @given(
        tied_rank_block_sets(),
        st.integers(min_value=0, max_value=NUM_INSTANCES - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_unknown_conflicts_match_ladon_under_straggler(self, blocks, straggler):
        order = straggler_interleaving(blocks, straggler)
        self._assert_stepwise_equal(order, lambda block: UNKNOWN_CONFLICTS)


class TestDependencyConsistency:
    """Replica-independent ordering of conflicting blocks.

    Two replicas see the same per-instance SB sequences but arbitrary
    cross-instance interleavings; any two blocks sharing a conflict key must
    appear in the same relative order in both global logs (non-conflicting
    blocks commute, so their order is free to differ).
    """

    @given(
        conflicted_block_sets(),
        st.randoms(use_true_random=False),
        st.integers(min_value=0, max_value=NUM_INSTANCES - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_conflicting_pairs_agree_across_interleavings(self, data, rng, straggler):
        blocks, conflicts = data
        log_a = run_dependency(random_interleaving(blocks, rng), conflicts).global_log
        log_b = run_dependency(
            straggler_interleaving(blocks, straggler), conflicts
        ).global_log
        pos_a = {b.block_id: i for i, b in enumerate(log_a)}
        pos_b = {b.block_id: i for i, b in enumerate(log_b)}
        for i, first in enumerate(blocks):
            for second in blocks[i + 1 :]:
                if not conflicts[first.block_id].keys & conflicts[second.block_id].keys:
                    continue
                x, y = first.block_id, second.block_id
                if x in pos_a and y in pos_a and x in pos_b and y in pos_b:
                    assert (pos_a[x] < pos_a[y]) == (pos_b[x] < pos_b[y])

    @given(conflicted_block_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_per_key_release_order_follows_ordering_index(self, data, rng):
        blocks, conflicts = data
        orderer = run_dependency(random_interleaving(blocks, rng), conflicts)
        per_key = {}
        for block in orderer.global_log:
            for key in conflicts[block.block_id].keys:
                per_key.setdefault(key, []).append(OrderingIndex.of(block))
        for indices in per_key.values():
            assert indices == sorted(indices)

    @given(conflicted_block_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_integrity_and_flush_when_every_instance_advances(self, data, rng):
        blocks, conflicts = data
        orderer = run_dependency(random_interleaving(blocks, rng), conflicts)
        assert orderer.ordered_count + orderer.pending_count() == len(blocks)
        # Every instance advances past the highest rank with an independent
        # block: the bar passes everything pending and the backlog drains.
        top = max((b.rank for b in blocks), default=0)
        next_sn = {
            i: sum(1 for b in blocks if b.instance == i) for i in range(NUM_INSTANCES)
        }
        for instance in range(NUM_INSTANCES):
            orderer.on_deliver(
                make_block(instance, next_sn[instance], rank=top + 1 + instance),
                NO_CONFLICTS,
            )
        assert orderer.pending_count() == 0
        ordered_ids = [b.block_id for b in orderer.global_log]
        assert len(ordered_ids) == len(set(ordered_ids)) == len(blocks) + NUM_INSTANCES
