"""Property-based tests for the global-ordering engines.

The key invariants are the ones the paper's safety argument leans on:
every honest replica computes the same global order from the same set of
delivered blocks regardless of delivery interleaving (agreement), the order
respects each engine's ordering key (consistency), and no block is ordered
twice or dropped (integrity).
"""

from hypothesis import given, settings, strategies as st

from repro.ledger.blocks import Block, SystemState
from repro.ordering.base import OrderingIndex
from repro.ordering.dqbft import DQBFTGlobalOrderer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer

NUM_INSTANCES = 3


def make_block(instance, sn, rank=None):
    return Block.create(
        instance=instance,
        sequence_number=sn,
        transactions=[],
        state=SystemState.initial(NUM_INSTANCES),
        proposer=instance,
        rank=rank,
    )


@st.composite
def delivered_block_sets(draw):
    """Per-instance contiguous block prefixes with globally increasing ranks."""
    lengths = [
        draw(st.integers(min_value=0, max_value=6)) for _ in range(NUM_INSTANCES)
    ]
    blocks = []
    rank = 0
    remaining = {i: 0 for i in range(NUM_INSTANCES)}
    # Interleave the instances' next sequence numbers in a random but
    # rank-monotone creation order, as the protocol guarantees.
    work = [(i, sn) for i in range(NUM_INSTANCES) for sn in range(lengths[i])]
    order = draw(st.permutations(work))
    for instance, _ in order:
        sn = remaining[instance]
        remaining[instance] += 1
        rank += draw(st.integers(min_value=1, max_value=3))
        blocks.append(make_block(instance, sn, rank=rank))
    return blocks


@st.composite
def deliveries_with_permutation(draw):
    blocks = draw(delivered_block_sets())
    permutation = draw(st.permutations(blocks))
    return blocks, permutation


def per_instance_in_order(sequence):
    """Deliver blocks to an orderer respecting per-instance sequence order."""
    seen = {i: -1 for i in range(NUM_INSTANCES)}
    ready = []
    pending = list(sequence)
    while pending:
        progressed = False
        for block in list(pending):
            if block.sequence_number == seen[block.instance] + 1:
                ready.append(block)
                seen[block.instance] = block.sequence_number
                pending.remove(block)
                progressed = True
        if not progressed:
            break
    return ready


class TestLadonProperties:
    @given(deliveries_with_permutation())
    @settings(max_examples=120, deadline=None)
    def test_agreement_across_delivery_interleavings(self, data):
        blocks, permutation = data
        # SB delivers each instance's blocks in sequence order; across
        # instances the interleaving is arbitrary.
        first_order = per_instance_in_order(blocks)
        second_order = per_instance_in_order(permutation)
        orderer_a = LadonGlobalOrderer(NUM_INSTANCES)
        orderer_b = LadonGlobalOrderer(NUM_INSTANCES)
        for block in first_order:
            orderer_a.on_deliver(block)
        for block in second_order:
            orderer_b.on_deliver(block)
        ids_a = [b.block_id for b in orderer_a.global_log]
        ids_b = [b.block_id for b in orderer_b.global_log]
        # Both replicas ordered the same prefix in the same order (one may
        # have ordered more if its interleaving advanced the bar further, but
        # the common prefix must agree).
        common = min(len(ids_a), len(ids_b))
        assert ids_a[:common] == ids_b[:common]

    @given(delivered_block_sets())
    @settings(max_examples=120, deadline=None)
    def test_global_log_sorted_by_ordering_index_without_duplicates(self, blocks):
        orderer = LadonGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer.on_deliver(block)
        indices = [OrderingIndex.of(b) for b in orderer.global_log]
        assert indices == sorted(indices)
        ids = [b.block_id for b in orderer.global_log]
        assert len(ids) == len(set(ids))

    @given(delivered_block_sets())
    @settings(max_examples=120, deadline=None)
    def test_ordered_plus_pending_equals_delivered(self, blocks):
        orderer = LadonGlobalOrderer(NUM_INSTANCES)
        delivered = per_instance_in_order(blocks)
        for block in delivered:
            orderer.on_deliver(block)
        assert orderer.ordered_count + orderer.pending_count() == len(delivered)


class TestPredeterminedProperties:
    @given(deliveries_with_permutation())
    @settings(max_examples=120, deadline=None)
    def test_order_is_position_sorted_and_agreement_holds(self, data):
        blocks, permutation = data
        orderer_a = PredeterminedGlobalOrderer(NUM_INSTANCES)
        orderer_b = PredeterminedGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer_a.on_deliver(block)
        for block in per_instance_in_order(permutation):
            orderer_b.on_deliver(block)
        positions_a = [orderer_a.global_position(b) for b in orderer_a.global_log]
        assert positions_a == sorted(positions_a)
        ids_a = [b.block_id for b in orderer_a.global_log]
        ids_b = [b.block_id for b in orderer_b.global_log]
        common = min(len(ids_a), len(ids_b))
        assert ids_a[:common] == ids_b[:common]

    @given(delivered_block_sets())
    @settings(max_examples=120, deadline=None)
    def test_log_is_gapless_prefix(self, blocks):
        orderer = PredeterminedGlobalOrderer(NUM_INSTANCES)
        for block in per_instance_in_order(blocks):
            orderer.on_deliver(block)
        positions = [orderer.global_position(b) for b in orderer.global_log]
        assert positions == list(range(len(positions)))


class TestDQBFTProperties:
    @given(delivered_block_sets(), st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_execution_order_matches_decision_order(self, blocks, rng):
        orderer = DQBFTGlobalOrderer(NUM_INSTANCES)
        delivered = per_instance_in_order(blocks)
        decision_order = list(delivered)
        rng.shuffle(decision_order)
        for block in delivered:
            orderer.on_deliver(block)
        released = []
        for block in decision_order:
            released.extend(orderer.on_order_decision([block.block_id]))
        assert [b.block_id for b in released] == [b.block_id for b in decision_order]
