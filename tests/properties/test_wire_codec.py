"""Property-based round-trip tests for the live wire codec.

Every message type crossing the wire — the cluster's client messages and the
full PBFT family — must survive encode → decode exactly, and decoders must
tolerate unknown fields (forward compatibility with newer peers).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.messages import ClientReply, ClientRequest
from repro.crypto.signatures import Signature
from repro.ledger.blocks import Block, SystemState
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.transactions import Transaction, TransactionType
from repro.runtime.codec import (
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    WireCodecError,
    decode_envelope,
    encode_envelope,
    encode_payload,
)
from repro.runtime.control import Hello, ShutdownRequest, StatusReply, StatusRequest
from repro.sb.pbft.messages import (
    CheckpointMessage,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    ViewChange,
)

# -- strategies -------------------------------------------------------------

keys = st.text(min_size=1, max_size=12)
small_ints = st.integers(min_value=0, max_value=2**31)
times = st.none() | st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
json_metadata = st.dictionaries(
    keys=st.text(max_size=8),
    values=st.integers(min_value=-1000, max_value=1000) | st.text(max_size=8),
    max_size=3,
)

operations = st.builds(
    ObjectOperation,
    key=keys,
    kind=st.sampled_from(list(OperationKind)),
    amount=st.integers(min_value=-(2**40), max_value=2**40),
    object_type=st.sampled_from(list(ObjectType)),
)

signatures = st.builds(
    Signature,
    signer=keys,
    message_digest=st.text(alphabet="0123456789abcdef", min_size=8, max_size=16),
    value=st.text(alphabet="0123456789abcdef", min_size=8, max_size=16),
)

transactions = st.builds(
    Transaction,
    tx_id=st.text(min_size=1, max_size=20),
    operations=st.tuples(operations) | st.tuples(operations, operations),
    tx_type=st.sampled_from(list(TransactionType)),
    payload_size=st.integers(min_value=0, max_value=10_000),
    client_id=st.none() | keys,
    signatures=st.dictionaries(keys=keys, values=signatures, max_size=2),
    submitted_at=times,
    metadata=json_metadata,
)

system_states = st.builds(
    SystemState,
    sequence_numbers=st.lists(
        st.integers(min_value=-1, max_value=2**31), min_size=1, max_size=6
    ).map(tuple),
)

blocks = st.builds(
    Block,
    instance=small_ints,
    sequence_number=small_ints,
    transactions=st.lists(transactions, max_size=3).map(tuple),
    state=system_states,
    proposer=small_ints,
    epoch=small_ints,
    rank=st.none() | small_ints,
    signature=st.none() | signatures,
    metadata=json_metadata,
)

block_pairs = st.lists(st.tuples(small_ints, blocks), max_size=2).map(tuple)

digests = st.text(alphabet="0123456789abcdef", min_size=0, max_size=16)

messages = st.one_of(
    st.builds(ClientRequest, tx=transactions, client_node=small_ints),
    st.builds(
        ClientReply,
        tx_id=keys,
        replica=small_ints,
        committed=st.booleans(),
        confirmed_at=times,
    ),
    st.builds(
        PrePrepare,
        instance=small_ints,
        view=small_ints,
        sender=small_ints,
        sequence_number=small_ints,
        block=st.none() | blocks,
        digest=digests,
    ),
    st.builds(
        Prepare,
        instance=small_ints,
        view=small_ints,
        sender=small_ints,
        sequence_number=small_ints,
        digest=digests,
    ),
    st.builds(
        Commit,
        instance=small_ints,
        view=small_ints,
        sender=small_ints,
        sequence_number=small_ints,
        digest=digests,
    ),
    st.builds(
        ViewChange,
        instance=small_ints,
        view=small_ints,
        sender=small_ints,
        last_delivered=st.integers(min_value=-1, max_value=2**31),
        pending=block_pairs,
    ),
    st.builds(
        NewView,
        instance=small_ints,
        view=small_ints,
        sender=small_ints,
        reproposals=block_pairs,
    ),
    st.builds(
        CheckpointMessage,
        instance=small_ints,
        view=small_ints,
        sender=small_ints,
        epoch=small_ints,
        state_digest=digests,
    ),
)


def assert_deep_equal(decoded, original) -> None:
    """Structural equality via canonical re-encoding.

    Dataclass ``==`` is too weak here: ``Transaction`` compares by id only,
    so a block whose transactions lost their operations would still compare
    equal.  Re-encoding both sides and comparing the canonical payloads
    checks every field the wire carries.
    """
    assert type(decoded) is type(original)
    assert encode_payload(decoded) == encode_payload(original)


# -- round trips -------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(sender=small_ints, message=messages)
def test_envelope_round_trip(sender, message):
    decoded_sender, decoded = decode_envelope(encode_envelope(sender, message))
    assert decoded_sender == sender
    assert_deep_equal(decoded, message)
    assert decoded == message


@settings(max_examples=100, deadline=None)
@given(sender=small_ints, message=messages, extras=json_metadata)
def test_unknown_fields_are_tolerated(sender, message, extras):
    """Newer peers may add fields; decoding must ignore them at every level."""
    envelope = json.loads(encode_envelope(sender, message))
    for index, (key, value) in enumerate(extras.items()):
        envelope[f"x_envelope_{key}_{index}"] = value
        if isinstance(envelope["p"], dict):
            envelope["p"][f"x_payload_{key}_{index}"] = value
    tampered = json.dumps(envelope, sort_keys=True).encode()
    decoded_sender, decoded = decode_envelope(tampered)
    assert decoded_sender == sender
    assert_deep_equal(decoded, message)


@settings(max_examples=50, deadline=None)
@given(message=messages)
def test_encoding_is_canonical(message):
    """The same message always encodes to the same bytes."""
    assert encode_envelope(7, message) == encode_envelope(7, message)


# -- binary (v2) round trips --------------------------------------------------

control_messages = st.one_of(
    st.builds(
        Hello,
        node_id=small_ints,
        role=st.sampled_from(["replica", "client"]),
        wire_version=st.integers(min_value=1, max_value=3),
    ),
    st.builds(StatusRequest, nonce=small_ints),
    st.builds(
        StatusReply,
        nonce=small_ints,
        replica=small_ints,
        committed=small_ints,
        rejected=small_ints,
        state_digest=digests,
        delivered_frontier=st.lists(
            st.integers(min_value=-1, max_value=2**31), max_size=4
        ).map(tuple),
        view_changes=small_ints,
        stage_breakdown=st.dictionaries(
            keys=st.sampled_from(["send", "process", "order", "execute", "reply"]),
            values=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            max_size=3,
        ),
    ),
    st.builds(ShutdownRequest, reason=st.text(max_size=16)),
)

all_messages = messages | control_messages


@settings(max_examples=200, deadline=None)
@given(sender=small_ints, message=all_messages)
def test_binary_envelope_round_trip(sender, message):
    """Every message type survives the struct-packed v2 envelope exactly."""
    frame = encode_envelope(sender, message, version=WIRE_VERSION_BINARY)
    decoded_sender, decoded = decode_envelope(frame)
    assert decoded_sender == sender
    assert_deep_equal(decoded, message)


@settings(max_examples=200, deadline=None)
@given(sender=small_ints, message=all_messages)
def test_binary_decodes_identically_to_json(sender, message):
    """The two wire versions must decode to bit-identical values.

    Both decoded objects are re-rendered through the canonical JSON payload
    encoding and compared byte-for-byte, which covers every field the wire
    carries (including nested blocks, transactions and operations).
    """
    _, from_json = decode_envelope(encode_envelope(sender, message))
    _, from_binary = decode_envelope(
        encode_envelope(sender, message, version=WIRE_VERSION_BINARY)
    )
    assert type(from_binary) is type(from_json)
    assert encode_payload(from_binary) == encode_payload(from_json)


@settings(max_examples=50, deadline=None)
@given(message=all_messages)
def test_binary_encoding_is_canonical(message):
    """The same message always encodes to the same v2 bytes."""
    assert encode_envelope(7, message, version=WIRE_VERSION_BINARY) == encode_envelope(
        7, message, version=WIRE_VERSION_BINARY
    )


@settings(max_examples=100, deadline=None)
@given(message=messages)
def test_binary_frames_are_smaller_for_consensus_messages(message):
    """The point of v2: consensus frames must not be larger than JSON."""
    json_frame = encode_envelope(7, message)
    binary_frame = encode_envelope(7, message, version=WIRE_VERSION_BINARY)
    assert len(binary_frame) <= len(json_frame)


def test_binary_frame_with_unknown_type_id_is_an_error():
    from repro.runtime.codec import _HEADER

    frame = bytearray(
        encode_envelope(0, Prepare(instance=0, view=0, sender=0), version=2)
    )
    frame[_HEADER.size] = 250  # the native-mode type id byte
    with pytest.raises(WireCodecError, match="unknown binary wire type"):
        decode_envelope(bytes(frame))


def test_binary_frame_with_future_version_is_an_error():
    frame = bytearray(
        encode_envelope(0, Prepare(instance=0, view=0, sender=0), version=2)
    )
    frame[1] = 3  # version byte
    with pytest.raises(WireCodecError, match="unsupported wire version"):
        decode_envelope(bytes(frame))


def test_truncated_binary_frame_is_an_error():
    frame = encode_envelope(0, Prepare(instance=0, view=0, sender=0), version=2)
    with pytest.raises(WireCodecError):
        decode_envelope(frame[: len(frame) - 3])


def test_empty_frame_is_an_error():
    with pytest.raises(WireCodecError, match="empty frame"):
        decode_envelope(b"")


def test_unregistered_type_travels_as_embedded_json():
    """Types without a native binary layout still cross a v2 connection."""
    from repro.runtime import codec
    from repro.runtime.codec import register_wire_type

    class Probe:
        def __init__(self, value: int) -> None:
            self.value = value

    register_wire_type(
        Probe, "test_probe", lambda m: {"value": m.value}, lambda d: Probe(d["value"])
    )
    try:
        frame = encode_envelope(3, Probe(17), version=WIRE_VERSION_BINARY)
        assert frame[0] == 0xB2
        sender, decoded = decode_envelope(frame)
        assert sender == 3 and isinstance(decoded, Probe) and decoded.value == 17
        # Embedded-JSON frames reject trailing garbage like native ones do.
        with pytest.raises(WireCodecError, match="trailing bytes"):
            decode_envelope(frame + b"xx")
    finally:
        # The registry is process-global; do not leak the probe type into
        # other tests' wire_tags()/registry enumeration.
        codec._ENCODERS.pop(Probe, None)
        codec._DECODERS.pop("test_probe", None)


# -- protocol errors ---------------------------------------------------------


def test_unknown_type_tag_is_an_error():
    envelope = {"v": WIRE_VERSION, "t": "from_the_future", "s": 0, "p": {}}
    with pytest.raises(WireCodecError, match="unknown wire type"):
        decode_envelope(json.dumps(envelope).encode())


def test_wrong_version_is_an_error():
    envelope = json.loads(encode_envelope(0, Prepare(instance=0, view=0, sender=0)))
    envelope["v"] = WIRE_VERSION + 1
    with pytest.raises(WireCodecError, match="unsupported wire version"):
        decode_envelope(json.dumps(envelope).encode())


def test_unencodable_message_is_an_error():
    with pytest.raises(WireCodecError, match="no wire encoding"):
        encode_envelope(0, object())
