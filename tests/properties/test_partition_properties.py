"""Property-based tests for bucket partitioning and the workload generator."""

from hypothesis import given, settings, strategies as st

from repro.core.partition import PayerPartitioner, TransactionPartitioner
from repro.ledger.transactions import payment
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

account_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12
)


class TestPartitionerProperties:
    @given(account_names, st.integers(min_value=1, max_value=256))
    @settings(max_examples=200, deadline=None)
    def test_object_assignment_in_range_and_stable(self, key, num_instances):
        partitioner = PayerPartitioner(num_instances)
        bucket = partitioner.assign_object(key)
        assert 0 <= bucket < num_instances
        assert bucket == PayerPartitioner(num_instances).assign_object(key)

    @given(
        st.lists(account_names, min_size=1, max_size=3, unique=True),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_buckets_cover_exactly_the_payers(self, payers, num_instances):
        partitioner = PayerPartitioner(num_instances)
        tx = payment({payer: 1 for payer in payers}, {"sink": len(payers)})
        buckets = partitioner.buckets_for(tx)
        expected = {partitioner.assign_object(payer) for payer in payers}
        assert set(buckets) == expected
        assert buckets == sorted(buckets)

    @given(account_names, account_names, st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_same_payer_transactions_colocate(self, payer, payee, num_instances):
        partitioner = PayerPartitioner(num_instances)
        tx1 = payment({payer: 1}, {payee: 1}, tx_id="a")
        tx2 = payment({payer: 2}, {"other": 2}, tx_id="b")
        assert partitioner.buckets_for(tx1) == partitioner.buckets_for(tx2)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_transaction_partitioner_single_bucket(self, num_instances, index):
        partitioner = TransactionPartitioner(num_instances)
        tx = payment({"a": 1, "b": 1}, {"c": 2}, tx_id=f"tx-{index}")
        buckets = partitioner.buckets_for(tx)
        assert len(buckets) == 1
        assert 0 <= buckets[0] < num_instances


class TestWorkloadProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_transactions_are_well_formed(self, fraction, seed):
        config = WorkloadConfig(
            num_accounts=50,
            num_transactions=40,
            payment_fraction=fraction,
            num_shared_objects=4,
            seed=seed,
        )
        trace = EthereumStyleWorkload(config).generate()
        assert len(trace) == 40
        for tx in trace:
            assert tx.payers(), "every transaction must have at least one payer"
            if tx.is_payment:
                assert tx.total_debit() == tx.total_credit()
                assert not tx.shared_keys()
            else:
                assert tx.shared_keys()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_trace_ids_unique(self, seed):
        config = WorkloadConfig(
            num_accounts=50, num_transactions=60, num_shared_objects=4, seed=seed
        )
        trace = EthereumStyleWorkload(config).generate()
        ids = [tx.tx_id for tx in trace]
        assert len(ids) == len(set(ids))
