"""Property-based tests of the PBFT endpoint's agreement and total order.

Four endpoints are wired through a fabric that *buffers* messages and
delivers them in a hypothesis-chosen order.  Whatever the interleaving, every
replica must deliver the same blocks in the same sequence-number order — the
agreement and termination properties the paper assumes of its Sequenced
Broadcast building block (Sec. III-C).
"""

from hypothesis import given, settings, strategies as st

from repro.ledger.blocks import Block, SystemState
from repro.ledger.transactions import simple_transfer
from repro.sb.pbft.endpoint import PBFTConfig, PBFTEndpoint


class BufferedFabric:
    """Delivers protocol messages in an order chosen by the test."""

    def __init__(self, num_replicas):
        self.num_replicas = num_replicas
        self.endpoints = {}
        self.queue = []  # (destination, sender, message)

    def transport_for(self, replica_id):
        fabric = self

        class Transport:
            def send(self, destination, message):
                fabric.queue.append((destination, replica_id, message))

            def broadcast(self, message, include_self=False):
                for other in range(fabric.num_replicas):
                    if other == replica_id and not include_self:
                        continue
                    fabric.queue.append((other, replica_id, message))

            def set_timer(self, delay, callback):
                class Handle:
                    active = True

                    def cancel(self_inner):
                        self_inner.active = False

                return Handle()

            def now(self):
                return 0.0

        return Transport()

    def drain(self, rng):
        """Deliver every queued message in a randomised (but fair) order."""
        while self.queue:
            index = rng.randrange(len(self.queue))
            destination, sender, message = self.queue.pop(index)
            self.endpoints[destination].handle_message(sender, message)


def make_block(sn):
    return Block.create(
        instance=0,
        sequence_number=sn,
        transactions=[simple_transfer("a", "b", 1, tx_id=f"t{sn}")],
        state=SystemState.initial(1),
        proposer=0,
    )


@st.composite
def pbft_runs(draw):
    block_count = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return block_count, seed


class TestPBFTAgreementProperties:
    @given(pbft_runs())
    @settings(max_examples=60, deadline=None)
    def test_all_replicas_deliver_same_blocks_in_order(self, run):
        import random

        block_count, seed = run
        rng = random.Random(seed)
        fabric = BufferedFabric(4)
        delivered = {replica: [] for replica in range(4)}
        for replica in range(4):
            endpoint = PBFTEndpoint(
                instance_id=0,
                replica_id=replica,
                num_replicas=4,
                transport=fabric.transport_for(replica),
                config=PBFTConfig(view_change_timeout=1000.0),
            )
            endpoint.on_deliver(
                lambda block, replica=replica: delivered[replica].append(block)
            )
            fabric.endpoints[replica] = endpoint
        leader = fabric.endpoints[0]
        for sn in range(block_count):
            leader.broadcast_block(make_block(sn))
        fabric.drain(rng)
        # Termination: every replica delivered every block.
        for replica in range(4):
            assert len(delivered[replica]) == block_count
        # Agreement + total order: identical digests in identical order.
        reference = [block.digest for block in delivered[0]]
        for replica in range(1, 4):
            assert [block.digest for block in delivered[replica]] == reference
        # Order is by sequence number.
        assert [block.sequence_number for block in delivered[0]] == list(
            range(block_count)
        )
