"""Property tests for wire v3 super-frames.

Wire v3 changes *framing only*: a super-frame packs many envelopes into one
frame, and the envelope bytes inside must be exactly the bytes a sequential
v2 sender would have framed individually.  These properties pin that
equivalence for every message type crossing the wire, so a v3 node can
always interoperate with pinned v1/v2 peers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.codec import (
    WIRE_VERSION,
    WIRE_VERSION_BATCH,
    WIRE_VERSION_BINARY,
    decode_envelope,
    decode_envelopes,
    encode_envelope,
)
from repro.runtime.framing import (
    SUPER_FRAME_MAGIC,
    FrameError,
    encode_super_frame,
    is_super_frame,
    split_super_frame,
)
from test_wire_codec import all_messages, assert_deep_equal, small_ints

envelope_versions = st.sampled_from([WIRE_VERSION, WIRE_VERSION_BINARY])


@settings(max_examples=200, deadline=None)
@given(sender=small_ints, message=all_messages)
def test_v3_envelope_bytes_are_identical_to_v2(sender, message):
    """v3 is framing-level only: envelope encoding is bit-identical to v2."""
    v2 = encode_envelope(sender, message, version=WIRE_VERSION_BINARY)
    v3 = encode_envelope(sender, message, version=WIRE_VERSION_BATCH)
    assert v2 == v3


@settings(max_examples=100, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(small_ints, all_messages, envelope_versions),
        min_size=1,
        max_size=8,
    )
)
def test_super_frame_split_returns_the_packed_bytes(jobs):
    """Packing then splitting yields the sequential envelopes verbatim."""
    envelopes = [
        encode_envelope(sender, message, version=version)
        for sender, message, version in jobs
    ]
    payload = encode_super_frame(envelopes)
    assert is_super_frame(payload)
    assert split_super_frame(payload) == envelopes


@settings(max_examples=100, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(small_ints, all_messages, envelope_versions),
        min_size=1,
        max_size=8,
    )
)
def test_batched_decode_matches_sequential_decode(jobs):
    """decode_envelopes over a super-frame == decode_envelope per frame."""
    envelopes = [
        encode_envelope(sender, message, version=version)
        for sender, message, version in jobs
    ]
    batched = decode_envelopes(encode_super_frame(envelopes))
    sequential = [decode_envelope(envelope) for envelope in envelopes]
    assert len(batched) == len(sequential) == len(jobs)
    for (b_sender, b_message), (s_sender, s_message), (sender, message, _) in zip(
        batched, sequential, jobs
    ):
        assert b_sender == s_sender == sender
        assert_deep_equal(b_message, s_message)
        assert_deep_equal(b_message, message)


@settings(max_examples=100, deadline=None)
@given(sender=small_ints, message=all_messages, version=envelope_versions)
def test_singleton_super_frame_decodes_like_the_bare_envelope(
    sender, message, version
):
    envelope = encode_envelope(sender, message, version=version)
    [(batched_sender, batched_message)] = decode_envelopes(
        encode_super_frame([envelope])
    )
    bare_sender, bare_message = decode_envelope(envelope)
    assert batched_sender == bare_sender == sender
    assert_deep_equal(batched_message, bare_message)


@settings(max_examples=100, deadline=None)
@given(sender=small_ints, message=all_messages, version=envelope_versions)
def test_plain_envelopes_are_never_sniffed_as_super_frames(
    sender, message, version
):
    """v1 starts with ``{`` and v2 with 0xB2 — the 0xB3 sniff cannot collide,
    so ``decode_envelopes`` passes bare envelopes through untouched."""
    envelope = encode_envelope(sender, message, version=version)
    assert not is_super_frame(envelope)
    [(decoded_sender, decoded)] = decode_envelopes(envelope)
    assert decoded_sender == sender
    assert_deep_equal(decoded, message)


class TestMalformedSuperFrames:
    def _envelope(self) -> bytes:
        from repro.runtime.control import StatusRequest

        return encode_envelope(1, StatusRequest(nonce=7), version=WIRE_VERSION_BINARY)

    def test_count_beyond_payload_is_an_error(self):
        payload = bytes([SUPER_FRAME_MAGIC]) + (1000).to_bytes(4, "big")
        with pytest.raises(FrameError, match="exceeds its payload"):
            split_super_frame(payload)

    def test_truncated_envelope_is_an_error(self):
        payload = encode_super_frame([self._envelope()])[:-3]
        with pytest.raises(FrameError, match="truncated"):
            split_super_frame(payload)

    def test_trailing_bytes_are_an_error(self):
        payload = encode_super_frame([self._envelope()]) + b"xx"
        with pytest.raises(FrameError, match="trailing"):
            split_super_frame(payload)

    def test_non_super_frame_payload_is_an_error(self):
        with pytest.raises(FrameError, match="not a super-frame"):
            split_super_frame(self._envelope())

    def test_empty_payload_is_not_a_super_frame(self):
        assert not is_super_frame(b"")
