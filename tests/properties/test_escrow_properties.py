"""Property-based tests for the escrow mechanism (Algorithm 2).

These properties are the backbone of the paper's atomicity argument
(Lemma 5): no matter which interleaving of escrow / commit / abort operations
occurs, funds are conserved, balances never violate their conditions, and a
transaction's reservations are either all committed or all refunded.
"""

from hypothesis import given, settings, strategies as st

from repro.ledger.escrow import EscrowLog
from repro.ledger.state import StateStore
from repro.ledger.transactions import payment

ACCOUNTS = [f"acct-{i}" for i in range(6)]


@st.composite
def transfer_batches(draw):
    """A starting balance sheet plus a batch of payment transactions."""
    balances = {
        account: draw(st.integers(min_value=0, max_value=50)) for account in ACCOUNTS
    }
    count = draw(st.integers(min_value=1, max_value=12))
    transfers = []
    for index in range(count):
        payers = draw(
            st.lists(st.sampled_from(ACCOUNTS), min_size=1, max_size=2, unique=True)
        )
        payee = draw(st.sampled_from([a for a in ACCOUNTS if a not in payers]))
        amounts = {payer: draw(st.integers(min_value=1, max_value=30)) for payer in payers}
        transfers.append(
            payment(amounts, {payee: sum(amounts.values())}, tx_id=f"tx-{index}")
        )
    return balances, transfers


@st.composite
def escrow_scripts(draw):
    """A batch plus a per-transaction decision: commit, abort, or leave open."""
    balances, transfers = draw(transfer_batches())
    decisions = [
        draw(st.sampled_from(["commit", "abort", "open"])) for _ in transfers
    ]
    return balances, transfers, decisions


def run_script(balances, transfers, decisions):
    store = StateStore()
    store.load_accounts(balances)
    elog = EscrowLog(store)
    fully_escrowed = []
    for tx, decision in zip(transfers, decisions):
        results = [elog.escrow(op, tx) for op in tx.decrement_operations()]
        if not all(result.success for result in results):
            elog.abort_escrow(tx)
            continue
        if decision == "commit":
            elog.commit_escrow(tx)
            for op in tx.increment_operations():
                store.credit(op.key, op.amount)
            fully_escrowed.append(tx)
        elif decision == "abort":
            elog.abort_escrow(tx)
        else:
            fully_escrowed.append(tx)
    return store, elog


class TestEscrowProperties:
    @given(escrow_scripts())
    @settings(max_examples=150, deadline=None)
    def test_no_balance_ever_violates_its_condition(self, script):
        balances, transfers, decisions = script
        store, _ = run_script(balances, transfers, decisions)
        for account in ACCOUNTS:
            assert store.balance_of(account) >= 0

    @given(escrow_scripts())
    @settings(max_examples=150, deadline=None)
    def test_value_is_conserved_including_reservations(self, script):
        balances, transfers, decisions = script
        store, elog = run_script(balances, transfers, decisions)
        initial_supply = sum(balances.values())
        # Committed transfers move value between accounts; open reservations
        # hold it in the escrow log; aborted ones refund it.  Nothing is lost.
        # Committed payments also credit their payees, so the total owned
        # value plus outstanding reservations must equal the initial supply.
        assert store.total_owned_value() + elog.total_reserved() == initial_supply

    @given(escrow_scripts())
    @settings(max_examples=150, deadline=None)
    def test_atomicity_reservations_all_or_nothing(self, script):
        balances, transfers, decisions = script
        store, elog = run_script(balances, transfers, decisions)
        for tx, decision in zip(transfers, decisions):
            entries = elog.entries_for_transaction(tx)
            payer_count = len(tx.payers())
            # Either every payer still holds a reservation (transaction open)
            # or none does (committed, aborted, or never fully escrowed).
            assert len(entries) in (0, payer_count)

    @given(escrow_scripts())
    @settings(max_examples=100, deadline=None)
    def test_abort_everything_restores_initial_balances(self, script):
        balances, transfers, _ = script
        store = StateStore()
        store.load_accounts(balances)
        elog = EscrowLog(store)
        for tx in transfers:
            for op in tx.decrement_operations():
                elog.escrow(op, tx)
        for tx in transfers:
            elog.abort_escrow(tx)
        for account in ACCOUNTS:
            assert store.balance_of(account) == balances[account]
        assert len(elog) == 0

    @given(escrow_scripts())
    @settings(max_examples=100, deadline=None)
    def test_escrow_log_internal_consistency(self, script):
        balances, transfers, decisions = script
        store, elog = run_script(balances, transfers, decisions)
        # Per-key views, per-transaction views and the aggregate reserve must
        # describe the same set of entries.
        per_key_total = sum(elog.pending_amount(account) for account in ACCOUNTS)
        per_tx_total = sum(
            entry.amount
            for tx in transfers
            for entry in elog.entries_for_transaction(tx)
        )
        assert per_key_total == elog.total_reserved()
        assert per_tx_total == elog.total_reserved()
        assert len(elog) == sum(len(elog.entries_for_key(account)) for account in ACCOUNTS)
