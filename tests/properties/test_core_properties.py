"""Property-based tests of the Orthrus core's safety argument.

Theorem 1 (Safety) says replicas that reach the same state hold identical
object values.  Here two independently constructed OrthrusCore "replicas"
consume the same blocks under different cross-instance interleavings and must
end with identical state digests, identical transaction statuses, and no
violated balance condition — the paper's Lemmas 1-3 in executable form.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import CoreConfig
from repro.core.orthrus import OrthrusCore
from repro.core.partition import LoadBalancedPartitioner
from repro.ledger.blocks import Block
from repro.ledger.state import StateStore
from repro.ledger.transactions import contract_call, payment, simple_transfer

NUM_INSTANCES = 2
ACCOUNTS = ["alice", "bob", "carol", "dave"]
#: Accounts pinned so instance assignment is stable across runs.
PLACEMENT = {"alice": 0, "carol": 0, "bob": 1, "dave": 1}
SHARED = ["slot-a", "slot-b"]


@st.composite
def workloads(draw):
    """Random balances plus a random mix of payments and contract calls."""
    balances = {
        account: draw(st.integers(min_value=0, max_value=40)) for account in ACCOUNTS
    }
    count = draw(st.integers(min_value=1, max_value=10))
    transactions = []
    for index in range(count):
        kind = draw(st.sampled_from(["payment", "multi", "contract"]))
        if kind == "payment":
            payer, payee = draw(
                st.lists(st.sampled_from(ACCOUNTS), min_size=2, max_size=2, unique=True)
            )
            amount = draw(st.integers(min_value=1, max_value=25))
            transactions.append(
                simple_transfer(payer, payee, amount, tx_id=f"tx-{index}")
            )
        elif kind == "multi":
            payers = draw(
                st.lists(st.sampled_from(ACCOUNTS), min_size=2, max_size=2, unique=True)
            )
            payee = draw(st.sampled_from(ACCOUNTS))
            amounts = {p: draw(st.integers(min_value=1, max_value=15)) for p in payers}
            transactions.append(
                payment(amounts, {payee: sum(amounts.values())}, tx_id=f"tx-{index}")
            )
        else:
            caller = draw(st.sampled_from(ACCOUNTS))
            slot = draw(st.sampled_from(SHARED))
            transactions.append(
                contract_call(
                    {caller: draw(st.integers(min_value=1, max_value=15))},
                    {slot: draw(st.integers(min_value=0, max_value=100))},
                    tx_id=f"tx-{index}",
                )
            )
    return balances, transactions


def build_core(balances):
    config = CoreConfig(num_instances=NUM_INSTANCES, batch_size=4, epoch_length=1000)
    store = StateStore()
    store.load_accounts(balances)
    for key in SHARED:
        store.create_shared(key, 0)
    core = OrthrusCore(config, store)
    core.partitioner = LoadBalancedPartitioner(NUM_INSTANCES, PLACEMENT)
    return core


def build_blocks(balances, transactions, batch_size=2):
    """Build the blocks an honest deployment would produce.

    A scratch "leader" core selects valid batches (``pullValidTx``), creates
    blocks referencing its delivered frontier, and immediately consumes them,
    exactly like the single-leader-per-instance deployment the paper assumes.
    The recorded blocks are then replayed into independent replica cores.
    Transactions that never become valid (payer permanently underfunded) are
    simply never included, as in the real protocol.
    """
    leader = build_core(balances)
    for tx in transactions:
        leader.submit(tx)
    blocks = []
    sns = {i: 0 for i in range(NUM_INSTANCES)}
    stalled_rounds = 0
    while stalled_rounds < 2:
        progressed = False
        for instance in range(NUM_INSTANCES):
            batch = leader.select_batch(instance, batch_size)
            if not batch:
                continue
            block = Block.create(
                instance=instance,
                sequence_number=sns[instance],
                transactions=batch,
                state=leader.delivered_state(),
                proposer=instance,
                rank=leader.next_rank(),
            )
            sns[instance] += 1
            blocks.append(block)
            leader.on_block_delivered(block)
            progressed = True
        stalled_rounds = 0 if progressed else stalled_rounds + 1
    # Closing no-ops so the rank bar passes every real block (epoch closing).
    for _ in range(2):
        for instance in range(NUM_INSTANCES):
            block = Block.create(
                instance=instance,
                sequence_number=sns[instance],
                transactions=[],
                state=leader.delivered_state(),
                proposer=instance,
                rank=leader.next_rank(),
            )
            sns[instance] += 1
            blocks.append(block)
            leader.on_block_delivered(block)
    included = {
        tx.tx_id for block in blocks for tx in block.transactions
    }
    return blocks, included


def interleavings(blocks, flip):
    """Two per-instance-ordered interleavings of the same block set."""
    instance_queues = {i: [b for b in blocks if b.instance == i] for i in range(NUM_INSTANCES)}
    order_a = []
    queues = {i: list(q) for i, q in instance_queues.items()}
    toggle = 0
    while any(queues.values()):
        instance = toggle % NUM_INSTANCES if not flip else (toggle + 1) % NUM_INSTANCES
        toggle += 1
        if queues[instance]:
            order_a.append(queues[instance].pop(0))
        else:
            other = 1 - instance
            if queues[other]:
                order_a.append(queues[other].pop(0))
    return order_a


class TestOrthrusSafetyProperties:
    @given(workloads())
    @settings(max_examples=80, deadline=None)
    def test_replicas_converge_to_identical_state(self, workload):
        balances, transactions = workload
        blocks, included = build_blocks(balances, transactions)
        replica_a = build_core(balances)
        replica_b = build_core(balances)
        for block in interleavings(blocks, flip=False):
            replica_a.on_block_delivered(block)
        for block in interleavings(blocks, flip=True):
            replica_b.on_block_delivered(block)
        assert replica_a.store.state_digest() == replica_b.store.state_digest()
        for tx_id in included:
            assert replica_a.status_of(tx_id) == replica_b.status_of(tx_id)

    @given(workloads())
    @settings(max_examples=80, deadline=None)
    def test_no_owned_balance_goes_negative(self, workload):
        balances, transactions = workload
        blocks, _ = build_blocks(balances, transactions)
        core = build_core(balances)
        for block in blocks:
            core.on_block_delivered(block)
        for account in ACCOUNTS:
            assert core.store.balance_of(account) >= 0

    @given(workloads())
    @settings(max_examples=80, deadline=None)
    def test_every_included_transaction_is_confirmed(self, workload):
        balances, transactions = workload
        blocks, included = build_blocks(balances, transactions)
        core = build_core(balances)
        for block in blocks:
            core.on_block_delivered(block)
        by_id = {tx.tx_id: tx for tx in transactions}
        for tx_id in included:
            # Single-instance transactions are always confirmed; transactions
            # split across instances may stay pending when one side's payer
            # was never able to fund its part (that side is never included).
            tx = by_id[tx_id]
            all_parts_included = all(
                part in included for part in [tx_id]
            ) and len(core.partitioner.buckets_for(tx)) == 1
            if all_parts_included:
                assert core.status_of(tx_id).terminal

    @given(workloads())
    @settings(max_examples=80, deadline=None)
    def test_value_conservation_modulo_contract_burn(self, workload):
        balances, transactions = workload
        blocks, _ = build_blocks(balances, transactions)
        core = build_core(balances)
        outcomes = []
        for block in blocks:
            outcomes.extend(core.on_block_delivered(block))
        committed = {o.tx.tx_id for o in outcomes if o.committed}
        burn = sum(
            tx.total_debit() - sum(
                op.amount for op in tx.increment_operations()
                if op.object_type.value == "owned"
            )
            for tx in transactions
            if tx.is_contract and tx.tx_id in committed
        )
        initial_supply = sum(balances.values())
        assert core.store.total_owned_value() + core.escrow.total_reserved() + burn == (
            initial_supply
        )

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_each_transaction_confirmed_at_most_once(self, workload):
        balances, transactions = workload
        blocks, _ = build_blocks(balances, transactions)
        core = build_core(balances)
        outcomes = []
        for block in blocks:
            outcomes.extend(core.on_block_delivered(block))
        confirmed_ids = [o.tx.tx_id for o in outcomes]
        assert len(confirmed_ids) == len(set(confirmed_ids))

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_honest_leader_blocks_never_produce_rejections(self, workload):
        # pullValidTx only proposes transactions whose payers can cover them,
        # so partial-path escrows always succeed (Lemma 1's guarantee).
        balances, transactions = workload
        blocks, _ = build_blocks(balances, transactions)
        core = build_core(balances)
        outcomes = []
        for block in blocks:
            outcomes.extend(core.on_block_delivered(block))
        assert all(outcome.committed for outcome in outcomes)
