"""Property-based tests for the replica write-ahead log.

Two properties pin the WAL's crash-safety contract:

* arbitrary record sequences round-trip bit-identically through
  append → reopen → append → replay, and
* a torn final record — the file truncated at *every* byte offset inside the
  last entry — is detected and dropped without corrupting the replayed
  prefix.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.blocks import Block, SystemState
from repro.runtime.durability import (
    block_record,
    compact_wal,
    decode_block_record,
    epoch_record,
    view_record,
)
from repro.runtime.wal import WalWriter, decode_record, encode_record, read_wal

# JSON-safe scalar and container values, including non-ASCII text and the
# escape-heavy characters (newlines, quotes, backslashes) that would break a
# naive line format.
scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.text(max_size=20)
)
values = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)
records = st.dictionaries(st.text(max_size=12), values, max_size=4)
record_lists = st.lists(records, max_size=12)


@given(records)
def test_encode_decode_record_round_trip(record):
    line = encode_record(record)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_record(line[:-1]) == record


@given(record_lists, record_lists, st.integers(min_value=1, max_value=5))
@settings(max_examples=60)
def test_append_reopen_replay_round_trip(tmp_path_factory, first, second, fsync_every):
    path = tmp_path_factory.mktemp("wal") / "wal.jsonl"
    with WalWriter(path, fsync_every=fsync_every) as wal:
        for record in first:
            wal.append(record)
    # Reopen in a second incarnation (append mode): earlier records survive.
    with WalWriter(path, fsync_every=fsync_every) as wal:
        for record in second:
            wal.append(record)
        assert wal.records_appended == len(second)
    assert path.stat().st_size == sum(
        len(encode_record(record)) for record in first + second
    )
    assert read_wal(path) == first + second


@given(
    st.lists(records, min_size=1, max_size=6),
    st.data(),
)
@settings(max_examples=40)
def test_torn_tail_dropped_without_corrupting_prefix(tmp_path_factory, sequence, data):
    path = tmp_path_factory.mktemp("wal") / "wal.jsonl"
    with WalWriter(path, fsync_every=1) as wal:
        for record in sequence:
            wal.append(record)
    blob = path.read_bytes()
    last_line = encode_record(sequence[-1])
    prefix_len = len(blob) - len(last_line)
    # Truncate at every byte offset inside the final entry (including zero
    # bytes of it): the replayed log must be exactly the untouched prefix.
    cut = data.draw(st.integers(min_value=0, max_value=len(last_line) - 1), label="cut")
    path.write_bytes(blob[: prefix_len + cut])
    assert read_wal(path) == sequence[:-1]


def test_every_truncation_offset_of_last_entry(tmp_path):
    """Exhaustive (non-sampled) sweep over the last record's byte offsets."""
    path = tmp_path / "wal.jsonl"
    sequence = [{"k": "b", "sn": i, "payload": "x" * i} for i in range(4)]
    with WalWriter(path, fsync_every=1) as wal:
        for record in sequence:
            wal.append(record)
    blob = path.read_bytes()
    last_line = encode_record(sequence[-1])
    prefix_len = len(blob) - len(last_line)
    for cut in range(len(last_line)):
        path.write_bytes(blob[: prefix_len + cut])
        assert read_wal(path) == sequence[:-1], f"cut at byte {cut}"
    # And the untouched file replays everything.
    path.write_bytes(blob)
    assert read_wal(path) == sequence


def test_mid_file_corruption_stops_replay_at_intact_prefix(tmp_path):
    path = tmp_path / "wal.jsonl"
    good = [{"sn": i} for i in range(5)]
    with WalWriter(path, fsync_every=1) as wal:
        for record in good[:3]:
            wal.append(record)
    with open(path, "ab") as handle:
        handle.write(b"deadbeef {corrupt\n")
    with WalWriter(path, fsync_every=1) as wal:
        for record in good[3:]:
            wal.append(record)
    # Records after the corruption are no longer a trusted prefix.
    assert read_wal(path) == good[:3]


def test_bit_flip_in_payload_fails_checksum(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WalWriter(path, fsync_every=1) as wal:
        wal.append({"sn": 1, "value": 42})
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0x01  # flip one bit inside the JSON payload
    path.write_bytes(bytes(blob))
    assert read_wal(path) == []


def test_missing_file_replays_empty():
    assert read_wal("/nonexistent/wal.jsonl") == []


# -- compaction ---------------------------------------------------------------


def _block(instance: int, sequence: int) -> Block:
    return Block.create(
        instance=instance,
        sequence_number=sequence,
        transactions=[],
        state=SystemState.initial(2),
        proposer=0,
        epoch=sequence // 4,
    )


def _replay_state(path):
    """What a recovery reads from a WAL: blocks, max view per instance,
    epoch marks — the replayable content, independent of record order."""
    blocks = []
    views: dict[int, int] = {}
    epochs = []
    for record in read_wal(path):
        kind = record.get("k")
        if kind == "b":
            block = decode_block_record(record)
            blocks.append((block.instance, block.sequence_number))
        elif kind == "v":
            instance, view = int(record["i"]), int(record["v"])
            views[instance] = max(views.get(instance, -1), view)
        elif kind == "e":
            epochs.append(int(record["e"]))
    return sorted(blocks), views, sorted(epochs)


@given(
    st.lists(st.integers(min_value=0, max_value=11), max_size=24),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=5)
        ),
        max_size=6,
    ),
    st.lists(st.integers(min_value=0, max_value=5), max_size=4),
    st.data(),
)
@settings(max_examples=60)
def test_compaction_never_loses_the_replayable_suffix(
    tmp_path_factory, deliveries, view_installs, epoch_marks, data
):
    """After compacting below a snapshot frontier, replaying snapshot +
    compacted WAL must see exactly what snapshot + full WAL would: every
    block above the frontier, the maximum installed view per instance, and
    every epoch mark above the snapshot epoch."""
    path = tmp_path_factory.mktemp("wal") / "wal.jsonl"
    next_seq = [0, 0]
    with WalWriter(path, fsync_every=1) as wal:
        for choice in deliveries:
            instance = choice % 2
            wal.append(block_record(_block(instance, next_seq[instance])))
            next_seq[instance] += 1
        for instance, view in view_installs:
            wal.append(view_record(instance, view))
        for epoch in epoch_marks:
            wal.append(epoch_record(epoch, "cp", "sd"))

    # A snapshot covers a per-instance prefix of the delivered blocks.
    frontier = [
        data.draw(st.integers(min_value=-1, max_value=next_seq[i] - 1), label=f"f{i}")
        for i in range(2)
    ]
    epoch_cut = data.draw(st.integers(min_value=0, max_value=6), label="epoch")

    full_blocks, full_views, full_epochs = _replay_state(path)
    before = path.stat().st_size
    kept, dropped = compact_wal(path, frontier=frontier, epoch=epoch_cut)
    blocks, views, epochs = _replay_state(path)

    assert blocks == sorted(
        (i, s) for i, s in full_blocks if s > frontier[i]
    ), "compaction lost or invented a block above the frontier"
    assert views == full_views, "compaction lost an installed view"
    assert epochs == sorted(e for e in full_epochs if e > epoch_cut)
    assert kept == len(read_wal(path))
    assert path.stat().st_size <= before

    # Compaction at the same cut is idempotent.
    compact_wal(path, frontier=frontier, epoch=epoch_cut)
    assert _replay_state(path) == (blocks, views, epochs)


def test_compaction_preserves_max_view_even_below_frontier(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WalWriter(path, fsync_every=1) as wal:
        wal.append(view_record(0, 3))
        wal.append(view_record(0, 1))  # stale re-install survives as the max
        wal.append(view_record(1, 2))
        wal.append(block_record(_block(0, 0)))
    kept, dropped = compact_wal(path, frontier=[0, -1], epoch=0)
    # The block is covered by the frontier, the views collapse to one per
    # instance at their maximum.
    assert dropped == 2
    _, views, _ = _replay_state(path)
    assert views == {0: 3, 1: 2}
