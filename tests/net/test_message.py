"""Tests for message envelopes and size estimation."""

from dataclasses import dataclass

from repro.net.message import MESSAGE_OVERHEAD_BYTES, Envelope, estimate_size


@dataclass
class Payload:
    size_bytes: int = 1000


class TestSizeEstimation:
    def test_payload_with_declared_size(self):
        assert estimate_size(Payload(2048)) == 2048 + MESSAGE_OVERHEAD_BYTES

    def test_plain_object_charged_overhead_only(self):
        assert estimate_size("small") == MESSAGE_OVERHEAD_BYTES
        assert estimate_size(12345) == MESSAGE_OVERHEAD_BYTES

    def test_negative_declared_size_ignored(self):
        assert estimate_size(Payload(-5)) == MESSAGE_OVERHEAD_BYTES


class TestEnvelope:
    def test_envelope_computes_size_when_missing(self):
        envelope = Envelope(source=0, destination=1, payload=Payload(500))
        assert envelope.size_bytes == 500 + MESSAGE_OVERHEAD_BYTES

    def test_envelope_preserves_explicit_size(self):
        envelope = Envelope(source=0, destination=1, payload="x", size_bytes=999)
        assert envelope.size_bytes == 999

    def test_envelope_records_routing(self):
        envelope = Envelope(source=3, destination=7, payload="p", sent_at=1.0, deliver_at=1.5)
        assert envelope.source == 3
        assert envelope.destination == 7
        assert envelope.deliver_at > envelope.sent_at
