"""Tests for the simulated network fabric and fault injection."""

import pytest

from repro.errors import UnknownNodeError
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Sink(Process):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.inbox = []

    def receive(self, sender, message):
        self.inbox.append((sender, message, self.now))


def build(num_nodes=3, latency=0.01):
    sim = Simulator()
    network = Network(sim, latency_model=FixedLatencyModel(latency))
    nodes = [Sink(i) for i in range(num_nodes)]
    for node in nodes:
        network.register(node)
    return sim, network, nodes


class TestDelivery:
    def test_point_to_point_delivery(self):
        sim, network, nodes = build()
        network.send(0, 1, "msg")
        sim.run()
        sender, payload, delivered_at = nodes[1].inbox[0]
        assert (sender, payload) == (0, "msg")
        # Propagation delay plus the (tiny) serialisation delay of the header.
        assert delivered_at == pytest.approx(0.01, rel=1e-3)

    def test_local_delivery_is_immediate(self):
        sim, network, nodes = build()
        network.send(2, 2, "self")
        sim.run()
        assert nodes[2].inbox == [(2, "self", 0.0)]

    def test_broadcast_reaches_everyone_else(self):
        sim, network, nodes = build(4)
        network.broadcast(0, "hello")
        sim.run()
        assert all(len(n.inbox) == 1 for n in nodes[1:])
        assert nodes[0].inbox == []

    def test_unknown_destination_raises(self):
        _, network, _ = build()
        with pytest.raises(UnknownNodeError):
            network.send(0, 99, "x")

    def test_stats_count_messages_and_bytes(self):
        sim, network, _ = build()
        network.send(0, 1, "msg")
        network.send(0, 2, "msg")
        sim.run()
        stats = network.stats.as_dict()
        assert stats["messages_sent"] == 2
        assert stats["messages_delivered"] == 2
        assert stats["bytes_sent"] > 0

    def test_delivery_hook_invoked(self):
        sim, network, _ = build()
        seen = []
        network.add_delivery_hook(lambda env: seen.append(env.payload))
        network.send(0, 1, "observed")
        sim.run()
        assert seen == ["observed"]


class TestFaults:
    def test_crashed_destination_drops_messages(self):
        sim, network, nodes = build()
        network.crash(1)
        network.send(0, 1, "lost")
        sim.run()
        assert nodes[1].inbox == []
        assert network.stats.messages_dropped == 1

    def test_crashed_source_cannot_send(self):
        sim, network, nodes = build()
        network.crash(0)
        network.send(0, 1, "lost")
        sim.run()
        assert nodes[1].inbox == []

    def test_recover_restores_connectivity(self):
        sim, network, nodes = build()
        network.crash(1)
        network.recover(1)
        network.send(0, 1, "back")
        sim.run()
        assert len(nodes[1].inbox) == 1

    def test_mute_blocks_specific_destinations(self):
        sim, network, nodes = build()
        network.mute(0, [1])
        network.send(0, 1, "blocked")
        network.send(0, 2, "allowed")
        sim.run()
        assert nodes[1].inbox == []
        assert len(nodes[2].inbox) == 1

    def test_partition_separates_groups(self):
        sim, network, nodes = build(4)
        network.partition([[0, 1], [2, 3]])
        network.send(0, 2, "cross")
        network.send(0, 1, "within")
        sim.run()
        assert nodes[2].inbox == []
        assert len(nodes[1].inbox) == 1

    def test_heal_partition(self):
        sim, network, nodes = build(4)
        network.partition([[0, 1], [2, 3]])
        network.heal_partition()
        network.send(0, 2, "cross")
        sim.run()
        assert len(nodes[2].inbox) == 1

    def test_straggler_slowdown_delays_messages(self):
        sim, network, nodes = build(3, latency=0.1)
        network.set_slowdown(1, 10.0)
        network.send(0, 1, "slow")
        network.send(0, 2, "fast")
        sim.run()
        slow_time = nodes[1].inbox[0][2]
        fast_time = nodes[2].inbox[0][2]
        assert slow_time == pytest.approx(fast_time * 10.0)

    def test_slowdown_never_below_one(self):
        _, network, _ = build()
        network.set_slowdown(0, 0.1)
        assert network.condition(0).slowdown == 1.0


class TestMembershipCaches:
    def test_broadcast_destinations_follow_late_registration(self):
        sim, network, nodes = build(3)
        network.broadcast(0, "first")
        late = Sink(7)
        network.register(late)
        network.broadcast(0, "second")
        sim.run()
        assert [m for _, m, _ in late.inbox] == ["second"]
        assert [m for _, m, _ in nodes[1].inbox] == ["first", "second"]
        assert network.node_ids() == [0, 1, 2, 7]

    def test_unregister_removes_node_from_broadcasts(self):
        sim, network, nodes = build(3)
        network.broadcast(0, "first")
        sim.run()
        network.unregister(2)
        network.broadcast(0, "second")
        sim.run()
        assert [m for _, m, _ in nodes[2].inbox] == ["first"]
        assert [m for _, m, _ in nodes[1].inbox] == ["first", "second"]
        assert network.node_ids() == [0, 1]

    def test_messages_in_flight_to_unregistered_node_drop(self):
        sim, network, nodes = build(3)
        network.send(0, 2, "doomed")
        network.unregister(2)
        sim.run()
        assert nodes[2].inbox == []
        assert network.stats.messages_dropped == 1

    def test_unregister_unknown_node_is_a_noop(self):
        _, network, _ = build(3)
        network.unregister(99)
        assert network.node_ids() == [0, 1, 2]

    def test_include_self_broadcast_cached_separately(self):
        sim, network, nodes = build(2)
        network.broadcast(0, "to-others")
        network.broadcast(0, "to-all", include_self=True)
        sim.run()
        assert [m for _, m, _ in nodes[0].inbox] == ["to-all"]
        assert [m for _, m, _ in nodes[1].inbox] == ["to-others", "to-all"]

    def test_node_ids_copy_is_not_a_view(self):
        _, network, _ = build(2)
        ids = network.node_ids()
        ids.append(42)
        assert network.node_ids() == [0, 1]
