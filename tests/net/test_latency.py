"""Tests for latency and bandwidth models."""

import pytest

from repro.net.latency import (
    BandwidthModel,
    FixedLatencyModel,
    LANLatencyModel,
    WANLatencyModel,
    latency_model_for,
)
from repro.sim.rng import DeterministicRNG


class TestLANModel:
    def test_self_delay_is_zero(self):
        model = LANLatencyModel()
        assert model.delay(3, 3, DeterministicRNG(0)) == 0.0

    def test_delay_close_to_base(self):
        model = LANLatencyModel(base_delay=0.0005)
        rng = DeterministicRNG(1)
        samples = [model.delay(0, 1, rng) for _ in range(500)]
        assert all(s > 0 for s in samples)
        assert 0.0003 < sum(samples) / len(samples) < 0.0009

    def test_region_is_local(self):
        assert LANLatencyModel().region_of(5) == "local"


class TestWANModel:
    def test_round_robin_region_assignment(self):
        model = WANLatencyModel()
        assert model.region_of(0) != model.region_of(1)
        assert model.region_of(0) == model.region_of(4)

    def test_same_region_is_fast(self):
        model = WANLatencyModel()
        assert model.base_delay(0, 4) == pytest.approx(0.0005)

    def test_cross_region_is_slower_than_same_region(self):
        model = WANLatencyModel()
        assert model.base_delay(0, 2) > model.base_delay(0, 4)

    def test_matrix_symmetry(self):
        model = WANLatencyModel()
        for src in range(4):
            for dst in range(4):
                assert model.base_delay(src, dst) == model.base_delay(dst, src)

    def test_self_delay_zero(self):
        model = WANLatencyModel()
        assert model.delay(2, 2, DeterministicRNG(0)) == 0.0

    def test_jitter_produces_variation(self):
        model = WANLatencyModel()
        rng = DeterministicRNG(3)
        samples = {round(model.delay(0, 1, rng), 9) for _ in range(20)}
        assert len(samples) > 1


class TestFixedModel:
    def test_constant_delay(self):
        model = FixedLatencyModel(0.02)
        rng = DeterministicRNG(0)
        assert model.delay(0, 1, rng) == 0.02
        assert model.delay(1, 0, rng) == 0.02
        assert model.delay(1, 1, rng) == 0.0


class TestBandwidthModel:
    def test_serialization_delay_proportional_to_size(self):
        model = BandwidthModel(bandwidth_bps=1_000_000_000)
        assert model.serialization_delay(125_000_000) == pytest.approx(1.0)

    def test_fanout_shares_uplink(self):
        model = BandwidthModel(bandwidth_bps=1_000_000_000)
        single = model.serialization_delay(1_000_000, fanout=1)
        many = model.serialization_delay(1_000_000, fanout=10)
        assert many == pytest.approx(single * 10)

    def test_fanout_ignored_when_sharing_disabled(self):
        model = BandwidthModel(bandwidth_bps=1_000_000_000, per_node_share=False)
        assert model.serialization_delay(1_000_000, fanout=10) == pytest.approx(
            model.serialization_delay(1_000_000, fanout=1)
        )

    def test_zero_size_costs_nothing(self):
        assert BandwidthModel().serialization_delay(0) == 0.0


class TestFactory:
    def test_known_environments(self):
        assert isinstance(latency_model_for("lan"), LANLatencyModel)
        assert isinstance(latency_model_for("WAN"), WANLatencyModel)

    def test_unknown_environment_rejected(self):
        with pytest.raises(ValueError):
            latency_model_for("mars")
