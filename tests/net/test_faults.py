"""Tests for node fault/degradation conditions."""

from repro.net.faults import NodeCondition


class TestNodeCondition:
    def test_defaults_are_healthy(self):
        condition = NodeCondition()
        assert condition.slowdown == 1.0
        assert not condition.crashed
        assert condition.can_send_to(1, NodeCondition())

    def test_crash_blocks_both_directions(self):
        crashed = NodeCondition(crashed=True)
        healthy = NodeCondition()
        assert not crashed.can_send_to(1, healthy)
        assert not healthy.can_send_to(0, crashed)

    def test_muted_destination_blocked(self):
        condition = NodeCondition(muted_destinations={2})
        assert not condition.can_send_to(2, NodeCondition())
        assert condition.can_send_to(3, NodeCondition())

    def test_partition_groups(self):
        a = NodeCondition(partition_group=0)
        b = NodeCondition(partition_group=1)
        c = NodeCondition(partition_group=0)
        assert not a.can_send_to(1, b)
        assert a.can_send_to(2, c)

    def test_unpartitioned_node_reaches_partitioned(self):
        a = NodeCondition(partition_group=None)
        b = NodeCondition(partition_group=1)
        assert a.can_send_to(1, b)

    def test_reset_restores_health(self):
        condition = NodeCondition(
            slowdown=10.0, crashed=True, muted_destinations={1}, partition_group=2
        )
        condition.reset()
        assert condition.slowdown == 1.0
        assert not condition.crashed
        assert condition.muted_destinations == set()
        assert condition.partition_group is None
