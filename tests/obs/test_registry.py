"""Tests for the named-instrument metrics registry and its inert twin."""

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("g")
        assert gauge.read() == 0.0
        gauge.set(3.5)
        assert gauge.read() == 3.5

    def test_callback_evaluated_at_read(self):
        backing = {"depth": 0}
        gauge = Gauge("g", fn=lambda: backing["depth"])
        backing["depth"] = 7
        assert gauge.read() == 7.0

    def test_failing_callback_reads_zero(self):
        def explode():
            raise RuntimeError("torn down")

        assert Gauge("g", fn=explode).read() == 0.0


class TestHistogram:
    def test_count_mean_max(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.maximum == pytest.approx(0.003)

    def test_quantiles_bracket_the_data(self):
        histogram = Histogram("h")
        for _ in range(100):
            histogram.observe(0.010)
        # Bucket-midpoint estimation: within the 2x ladder of the true value.
        assert 0.005 <= histogram.quantile(0.5) <= 0.020
        assert 0.005 <= histogram.quantile(0.99) <= 0.020
        assert histogram.quantile(1.0) <= histogram.maximum + 1e-12

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_quantile_orders_mixed_values(self):
        histogram = Histogram("h")
        for _ in range(99):
            histogram.observe(0.001)
        histogram.observe(10.0)
        assert histogram.quantile(0.5) < 0.01
        # The topmost rank lives in the outlier's bucket — orders above the
        # bulk, even though mid-quantiles stay with the 99 fast samples.
        assert histogram.quantile(1.0) > 1.0
        assert histogram.quantile(0.9) < 0.01


class TestMetricsRegistry:
    def test_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert registry.enabled

    def test_gauge_fn_rebinds(self):
        registry = MetricsRegistry()
        registry.gauge_fn("depth", lambda: 1)
        registry.gauge_fn("depth", lambda: 2)
        assert registry.snapshot()["depth"] == 2.0

    def test_snapshot_is_flat_sorted_and_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("transport.frames_sent").inc(4)
        registry.gauge("replica.reply_cache_size").set(9)
        histogram = registry.histogram("consensus.bar_wait_seconds")
        histogram.observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["transport.frames_sent"] == 4.0
        assert snapshot["replica.reply_cache_size"] == 9.0
        assert snapshot["consensus.bar_wait_seconds.count"] == 1.0
        assert snapshot["consensus.bar_wait_seconds.mean"] == pytest.approx(0.25)
        assert snapshot["consensus.bar_wait_seconds.max"] == pytest.approx(0.25)
        assert "consensus.bar_wait_seconds.p50" in snapshot
        assert "consensus.bar_wait_seconds.p99" in snapshot
        assert list(snapshot) == sorted(snapshot)


class TestNullRegistry:
    def test_disabled_and_empty(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.snapshot() == {}

    def test_instruments_are_shared_noops(self):
        registry = NullRegistry()
        counter = registry.counter("anything")
        assert counter is registry.counter("something else")
        counter.inc(100)
        assert counter.value == 0
        gauge = registry.gauge_fn("g", lambda: 42)
        gauge.set(5.0)
        assert gauge.read() == 0.0
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert registry.snapshot() == {}
