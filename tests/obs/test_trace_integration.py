"""Stitched cross-process traces agree with the LatencyTracker breakdown.

A four-replica in-process cluster runs a traced closed-loop workload; the
trace files and the latency trackers then describe the *same* run on the
same shared monotonic clock, so per-transaction boundary timestamps and the
averaged five-stage breakdown must agree between the two pipelines.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.ledger.transactions import reset_transaction_counter
from repro.metrics.latency import STAGE_NAMES
from repro.runtime.client import ClientConfig
from repro.runtime.cluster import free_port
from repro.runtime.config import ReplicaRuntimeConfig
from repro.runtime.loadgen import LoadGenConfig, LoadGenerator
from repro.runtime.server import ReplicaServer
from repro.obs.trace import load_trace_events, stitch, trace_tx_ids
from repro.workload.config import WorkloadConfig

NUM_REPLICAS = 4
TRANSACTIONS = 40
WORKLOAD = WorkloadConfig(num_accounts=128, seed=5, payment_fraction=1.0)

#: LatencyTracker stage -> (timeline start attr, timeline end attr), the
#: replica-visible prefix of the five-stage breakdown (reply is client-side).
REPLICA_STAGES = {
    "send": ("submitted_at", "received_at"),
    "preprocessing": ("received_at", "proposed_at"),
    "partial_ordering": ("proposed_at", "delivered_at"),
    "global_ordering": ("delivered_at", "confirmed_at"),
}


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


def test_stitched_traces_agree_with_stage_breakdown(tmp_path):
    async def scenario():
        peers = tuple(("127.0.0.1", free_port()) for _ in range(NUM_REPLICAS))
        servers = []
        for replica_id in range(NUM_REPLICAS):
            server = ReplicaServer(
                ReplicaRuntimeConfig(
                    replica_id=replica_id,
                    peers=peers,
                    num_instances=2,
                    batch_size=32,
                    batch_interval=0.02,
                    workload=WORKLOAD,
                    trace_file=str(tmp_path / f"replica-{replica_id}" / "trace.jsonl"),
                    trace_sample=1.0,
                )
            )
            await server.start()
            servers.append(server)
        try:
            generator = LoadGenerator(
                list(peers),
                LoadGenConfig(
                    transactions=TRANSACTIONS,
                    mode="closed",
                    concurrency=8,
                    workload=WORKLOAD,
                    client=ClientConfig(timeout=3.0),
                    trace_file=str(tmp_path / "client" / "trace.jsonl"),
                    trace_sample=1.0,
                ),
            )
            report = await generator.run()
            assert report.completed == TRANSACTIONS
            client_timelines = {
                t.tx_id: t for t in generator.collector.latency.timelines()
            }
            replica0_timelines = {
                t.tx_id: t for t in servers[0].metrics.latency.timelines()
            }
            replica0_breakdown = servers[0].metrics.latency.stage_breakdown_partial()
        finally:
            for server in servers:
                server.stop()
                await server._shutdown()
        return client_timelines, replica0_timelines, replica0_breakdown

    client_timelines, replica0_timelines, replica0_breakdown = asyncio.run(scenario())

    events = load_trace_events(tmp_path)
    assert len(trace_tx_ids(events)) == TRANSACTIONS

    # --- client-side boundaries: submitted / replied are stamped by the
    # load generator into both pipelines from the same clock reads.
    for tx_id, timeline in client_timelines.items():
        stitched = stitch(events, tx_id)
        assert stitched is not None, f"no trace events for {tx_id}"
        submitted = stitched.first("submitted")
        replied = stitched.first("replied")
        assert submitted is not None and replied is not None
        assert submitted.t == pytest.approx(timeline.submitted_at, abs=1e-9)
        assert replied.t == pytest.approx(timeline.replied_at, abs=1e-9)

    # --- replica-side boundaries: replica 0's tracker and its trace file are
    # written from the same `now` at each pipeline step, so restricting the
    # stitch to replica 0 (+ the client) must reproduce its timelines.
    trace_event_of_stage_end = {
        "received_at": "received",
        "proposed_at": "proposed",
        "delivered_at": "committed",
        "confirmed_at": "executed",
    }
    replica0_events = [e for e in events if e.node in (0, 999)]
    compared = 0
    for tx_id, timeline in replica0_timelines.items():
        stitched = stitch(replica0_events, tx_id)
        if stitched is None:
            continue
        for attr, event_name in trace_event_of_stage_end.items():
            recorded = getattr(timeline, attr)
            traced = stitched.first(event_name)
            if recorded is None or traced is None:
                continue
            assert traced.t == pytest.approx(recorded, abs=1e-9)
            compared += 1
    assert compared > 0

    # --- aggregate: averaging the stitched replica-0 stage durations the
    # same way stage_breakdown_partial does must reproduce its numbers.
    totals = {name: 0.0 for name in STAGE_NAMES}
    counts = {name: 0 for name in STAGE_NAMES}
    for tx_id in replica0_timelines:
        stitched = stitch(replica0_events, tx_id)
        if stitched is None:
            continue
        durations = stitched.stage_durations()
        for stage in REPLICA_STAGES:
            if stage in durations:
                totals[stage] += durations[stage]
                counts[stage] += 1
    for stage in REPLICA_STAGES:
        if counts[stage] == 0:
            continue
        averaged = totals[stage] / counts[stage]
        assert averaged == pytest.approx(replica0_breakdown[stage], abs=1e-6), stage
    assert counts["partial_ordering"] > 0
    assert counts["global_ordering"] > 0
