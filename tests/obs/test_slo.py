"""Tests for phase windows and per-phase SLO computation."""

import pytest

from repro.metrics.latency import TransactionTimeline
from repro.obs.slo import (
    PhaseWindow,
    StatusSample,
    check_consistency,
    compute_phase_slos,
    fault_episode_windows,
    fault_phase_windows,
    quantile,
)


class TestQuantile:
    def test_empty_is_zero(self):
        assert quantile([], 0.99) == 0.0

    def test_nearest_rank(self):
        samples = [float(n) for n in range(1, 101)]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 0.5) == 51.0
        assert quantile(samples, 1.0) == 100.0


class TestFaultPhaseWindows:
    def test_no_events_is_single_pre_window(self):
        windows = fault_phase_windows(0.0, 10.0, [])
        assert [(w.name, w.start, w.end) for w in windows] == [("pre", 0.0, 10.0)]

    def test_empty_run_is_empty(self):
        assert fault_phase_windows(5.0, 5.0, [2.0]) == []

    def test_three_phases_with_settle(self):
        windows = fault_phase_windows(0.0, 30.0, [10.0, 12.0], settle=5.0)
        assert [(w.name, w.start, w.end) for w in windows] == [
            ("pre", 0.0, 10.0),
            ("during", 10.0, 17.0),
            ("post", 17.0, 30.0),
        ]

    def test_settle_clamped_to_run_end(self):
        windows = fault_phase_windows(0.0, 15.0, [10.0], settle=100.0)
        assert [w.name for w in windows] == ["pre", "during"]
        assert windows[-1].end == 15.0

    def test_event_at_run_start_drops_pre(self):
        windows = fault_phase_windows(0.0, 10.0, [0.0], settle=2.0)
        assert [w.name for w in windows] == ["during", "post"]

    def test_events_outside_run_ignored(self):
        windows = fault_phase_windows(0.0, 10.0, [-5.0, 50.0])
        assert [w.name for w in windows] == ["pre"]


class TestFaultEpisodeWindows:
    def test_no_episodes_is_single_pre_window(self):
        windows = fault_episode_windows(0.0, 10.0, [])
        assert [(w.name, w.start, w.end) for w in windows] == [("pre", 0.0, 10.0)]

    def test_empty_run_is_empty(self):
        assert fault_episode_windows(5.0, 5.0, [(1.0, 2.0, "x")]) == []

    def test_single_episode_with_settle(self):
        windows = fault_episode_windows(
            0.0, 30.0, [(10.0, 13.0, "partition {3} | {0,1,2}")], settle=2.0
        )
        assert [(w.name, w.start, w.end) for w in windows] == [
            ("pre", 0.0, 10.0),
            ("during:partition {3} | {0,1,2}", 10.0, 15.0),
            ("post:partition {3} | {0,1,2}", 15.0, 30.0),
        ]

    def test_two_episodes_each_get_their_own_windows(self):
        windows = fault_episode_windows(
            0.0, 30.0, [(5.0, 7.0, "crash replica 0"), (15.0, 18.0, "partition")]
        )
        assert [w.name for w in windows] == [
            "pre",
            "during:crash replica 0",
            "post:crash replica 0",
            "during:partition",
            "post:partition",
        ]
        # The post window of the first episode runs up to the next episode.
        assert windows[2].end == 15.0
        assert windows[4].end == 30.0

    def test_overlapping_episodes_merge_labels(self):
        # A crash inside the partition window: one merged during window.
        windows = fault_episode_windows(
            0.0, 20.0, [(5.0, 10.0, "partition"), (7.0, 8.0, "crash replica 0")]
        )
        assert [w.name for w in windows] == [
            "pre",
            "during:partition + crash replica 0",
            "post:partition + crash replica 0",
        ]
        assert windows[1].start == 5.0 and windows[1].end == 10.0

    def test_settle_can_cause_merge(self):
        windows = fault_episode_windows(
            0.0, 20.0, [(2.0, 4.0, "a"), (5.0, 6.0, "b")], settle=3.0
        )
        assert [w.name for w in windows] == ["pre", "during:a + b", "post:a + b"]

    def test_open_ended_episode_clamped_to_run_end(self):
        windows = fault_episode_windows(0.0, 10.0, [(6.0, 50.0, "stall")])
        assert [w.name for w in windows] == ["pre", "during:stall"]
        assert windows[-1].end == 10.0

    def test_episode_at_run_start_drops_pre(self):
        windows = fault_episode_windows(0.0, 10.0, [(0.0, 2.0, "x")])
        assert [w.name for w in windows] == ["during:x", "post:x"]


def _sample(at, replica, committed, frontier=(0, 0), digest=1):
    return StatusSample(
        at=at, replica=replica, committed=committed, frontier=frontier, digest=digest
    )


class TestCheckConsistency:
    def test_monotonic_log_is_ok(self):
        samples = [
            _sample(t, r, committed=10 * int(t) + r)
            for t in (1.0, 2.0, 3.0)
            for r in (0, 1)
        ]
        report = check_consistency(samples)
        assert report.ok
        assert report.samples == 6 and report.replicas == 2
        assert report.committed_regressions == 0
        assert report.regression_times == ()

    def test_committed_regression_detected_with_time(self):
        samples = [
            _sample(1.0, 0, committed=50),
            _sample(2.0, 0, committed=40),  # went backwards
            _sample(3.0, 0, committed=60),
        ]
        report = check_consistency(samples)
        assert not report.ok
        assert report.committed_regressions == 1
        assert report.regression_times == (2.0,)

    def test_planned_reset_rebaselines_instead_of_regressing(self):
        samples = [
            _sample(1.0, 0, committed=50),
            _sample(3.0, 0, committed=0),  # fresh process after planned restart
            _sample(4.0, 0, committed=20),
        ]
        report = check_consistency(samples, resets=[(2.5, 0)])
        assert report.committed_regressions == 0
        assert report.ok

    def test_reset_on_other_replica_does_not_excuse_regression(self):
        samples = [_sample(1.0, 0, committed=50), _sample(3.0, 0, committed=0)]
        report = check_consistency(samples, resets=[(2.5, 1)])
        assert report.committed_regressions == 1

    def test_frontier_regression_detected(self):
        samples = [
            _sample(1.0, 0, committed=10, frontier=(5, 7)),
            _sample(2.0, 0, committed=11, frontier=(5, 6)),  # instance 1 regressed
        ]
        report = check_consistency(samples)
        assert report.frontier_regressions == 1
        assert not report.ok

    def test_staleness_tracks_partitioned_laggard(self):
        # Replica 1 wedges at 10 while replica 0's head keeps advancing:
        # by t=6 replica 1 has been behind the t=2 head for 4 seconds.
        samples = [
            _sample(1.0, 0, committed=10),
            _sample(1.0, 1, committed=10),
            _sample(2.0, 0, committed=20),
            _sample(4.0, 0, committed=40),
            _sample(6.0, 1, committed=10),
        ]
        report = check_consistency(samples)
        assert report.max_staleness == pytest.approx(4.0)
        assert report.ok  # stale, not inconsistent

    def test_settled_digest_fork_counted(self):
        report = check_consistency([], final_digests={0: 7, 1: 7, 2: 9})
        assert report.digest_forks == 1
        assert not report.ok

    def test_agreeing_final_digests_are_not_a_fork(self):
        report = check_consistency([], final_digests={0: 7, 1: 7})
        assert report.digest_forks == 0


class TestPhaseRegressions:
    def test_regressions_attributed_to_windows_by_time(self):
        windows = [
            PhaseWindow("pre", 0.0, 10.0),
            PhaseWindow("during:partition", 10.0, 20.0),
            PhaseWindow("post:partition", 20.0, 30.0),
        ]
        pre, during, post = compute_phase_slos(
            windows, [], regression_times=[12.0, 15.0, 25.0]
        )
        assert pre.regressions == 0
        assert during.regressions == 2
        assert post.regressions == 1

    def test_no_run_log_leaves_regressions_unknown(self):
        (slo,) = compute_phase_slos([PhaseWindow("pre", 0.0, 1.0)], [])
        assert slo.regressions is None


def _timeline(tx_id, submitted_at, replied_at, committed=True):
    return TransactionTimeline(
        tx_id=tx_id, submitted_at=submitted_at, replied_at=replied_at, committed=committed
    )


class TestComputePhaseSLOs:
    def test_latencies_split_by_reply_phase(self):
        windows = [PhaseWindow("pre", 0.0, 10.0), PhaseWindow("during", 10.0, 20.0)]
        timelines = [
            # Fast during pre, 10x slower during the fault.
            *[_timeline(f"a{n}", 1.0 + n, 1.1 + n) for n in range(5)],
            *[_timeline(f"b{n}", 11.0 + n, 12.0 + n) for n in range(5)],
        ]
        pre, during = compute_phase_slos(windows, timelines)
        assert pre.submitted == 5 and pre.completed == 5 and pre.committed == 5
        assert during.completed == 5
        assert pre.p50 == pytest.approx(0.1)
        assert during.p50 == pytest.approx(1.0)
        assert during.p99 >= during.p50

    def test_uncommitted_counts_completed_but_not_latency(self):
        windows = [PhaseWindow("pre", 0.0, 10.0)]
        timelines = [
            _timeline("ok", 1.0, 1.5, committed=True),
            _timeline("rej", 2.0, 2.2, committed=False),
        ]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.completed == 2
        assert slo.committed == 1
        assert slo.p50 == pytest.approx(0.5)

    def test_unreplied_counts_submitted_only(self):
        windows = [PhaseWindow("pre", 0.0, 10.0)]
        timelines = [_timeline("hung", 1.0, None)]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.submitted == 1
        assert slo.completed == 0

    def test_availability_penalises_stalled_demand(self):
        # Demand throughout 0-4s, but completions only land in the first 2s:
        # the last four 0.5s sub-windows are in demand yet serve nothing.
        windows = [PhaseWindow("during", 0.0, 4.0)]
        timelines = [
            *[_timeline(f"ok{n}", 0.1 + 0.5 * n, 0.3 + 0.5 * n) for n in range(4)],
            _timeline("stuck", 0.2, None),
        ]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.availability == pytest.approx(4 / 8)

    def test_no_demand_is_vacuously_available(self):
        windows = [PhaseWindow("post", 100.0, 110.0)]
        timelines = [_timeline("old", 1.0, 2.0)]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.availability == 1.0

    def test_view_changes_attributed_by_samples(self):
        windows = [
            PhaseWindow("pre", 0.0, 10.0),
            PhaseWindow("during", 10.0, 20.0),
            PhaseWindow("post", 20.0, 30.0),
        ]
        samples = [(5.0, 0), (12.0, 1), (15.0, 3), (25.0, 3)]
        pre, during, post = compute_phase_slos(
            windows, [], view_change_samples=samples
        )
        assert pre.view_changes == 0
        assert during.view_changes == 3
        assert post.view_changes == 0

    def test_no_samples_leaves_view_changes_unknown(self):
        (slo,) = compute_phase_slos([PhaseWindow("pre", 0.0, 1.0)], [])
        assert slo.view_changes is None
