"""Tests for phase windows and per-phase SLO computation."""

import pytest

from repro.metrics.latency import TransactionTimeline
from repro.obs.slo import (
    PhaseWindow,
    compute_phase_slos,
    fault_phase_windows,
    quantile,
)


class TestQuantile:
    def test_empty_is_zero(self):
        assert quantile([], 0.99) == 0.0

    def test_nearest_rank(self):
        samples = [float(n) for n in range(1, 101)]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 0.5) == 51.0
        assert quantile(samples, 1.0) == 100.0


class TestFaultPhaseWindows:
    def test_no_events_is_single_pre_window(self):
        windows = fault_phase_windows(0.0, 10.0, [])
        assert [(w.name, w.start, w.end) for w in windows] == [("pre", 0.0, 10.0)]

    def test_empty_run_is_empty(self):
        assert fault_phase_windows(5.0, 5.0, [2.0]) == []

    def test_three_phases_with_settle(self):
        windows = fault_phase_windows(0.0, 30.0, [10.0, 12.0], settle=5.0)
        assert [(w.name, w.start, w.end) for w in windows] == [
            ("pre", 0.0, 10.0),
            ("during", 10.0, 17.0),
            ("post", 17.0, 30.0),
        ]

    def test_settle_clamped_to_run_end(self):
        windows = fault_phase_windows(0.0, 15.0, [10.0], settle=100.0)
        assert [w.name for w in windows] == ["pre", "during"]
        assert windows[-1].end == 15.0

    def test_event_at_run_start_drops_pre(self):
        windows = fault_phase_windows(0.0, 10.0, [0.0], settle=2.0)
        assert [w.name for w in windows] == ["during", "post"]

    def test_events_outside_run_ignored(self):
        windows = fault_phase_windows(0.0, 10.0, [-5.0, 50.0])
        assert [w.name for w in windows] == ["pre"]


def _timeline(tx_id, submitted_at, replied_at, committed=True):
    return TransactionTimeline(
        tx_id=tx_id, submitted_at=submitted_at, replied_at=replied_at, committed=committed
    )


class TestComputePhaseSLOs:
    def test_latencies_split_by_reply_phase(self):
        windows = [PhaseWindow("pre", 0.0, 10.0), PhaseWindow("during", 10.0, 20.0)]
        timelines = [
            # Fast during pre, 10x slower during the fault.
            *[_timeline(f"a{n}", 1.0 + n, 1.1 + n) for n in range(5)],
            *[_timeline(f"b{n}", 11.0 + n, 12.0 + n) for n in range(5)],
        ]
        pre, during = compute_phase_slos(windows, timelines)
        assert pre.submitted == 5 and pre.completed == 5 and pre.committed == 5
        assert during.completed == 5
        assert pre.p50 == pytest.approx(0.1)
        assert during.p50 == pytest.approx(1.0)
        assert during.p99 >= during.p50

    def test_uncommitted_counts_completed_but_not_latency(self):
        windows = [PhaseWindow("pre", 0.0, 10.0)]
        timelines = [
            _timeline("ok", 1.0, 1.5, committed=True),
            _timeline("rej", 2.0, 2.2, committed=False),
        ]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.completed == 2
        assert slo.committed == 1
        assert slo.p50 == pytest.approx(0.5)

    def test_unreplied_counts_submitted_only(self):
        windows = [PhaseWindow("pre", 0.0, 10.0)]
        timelines = [_timeline("hung", 1.0, None)]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.submitted == 1
        assert slo.completed == 0

    def test_availability_penalises_stalled_demand(self):
        # Demand throughout 0-4s, but completions only land in the first 2s:
        # the last four 0.5s sub-windows are in demand yet serve nothing.
        windows = [PhaseWindow("during", 0.0, 4.0)]
        timelines = [
            *[_timeline(f"ok{n}", 0.1 + 0.5 * n, 0.3 + 0.5 * n) for n in range(4)],
            _timeline("stuck", 0.2, None),
        ]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.availability == pytest.approx(4 / 8)

    def test_no_demand_is_vacuously_available(self):
        windows = [PhaseWindow("post", 100.0, 110.0)]
        timelines = [_timeline("old", 1.0, 2.0)]
        (slo,) = compute_phase_slos(windows, timelines)
        assert slo.availability == 1.0

    def test_view_changes_attributed_by_samples(self):
        windows = [
            PhaseWindow("pre", 0.0, 10.0),
            PhaseWindow("during", 10.0, 20.0),
            PhaseWindow("post", 20.0, 30.0),
        ]
        samples = [(5.0, 0), (12.0, 1), (15.0, 3), (25.0, 3)]
        pre, during, post = compute_phase_slos(
            windows, [], view_change_samples=samples
        )
        assert pre.view_changes == 0
        assert during.view_changes == 3
        assert post.view_changes == 0

    def test_no_samples_leaves_view_changes_unknown(self):
        (slo,) = compute_phase_slos([PhaseWindow("pre", 0.0, 1.0)], [])
        assert slo.view_changes is None
