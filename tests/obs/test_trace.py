"""Tests for deterministic sampling, trace files, and cross-process stitching."""

import pytest

from repro.obs.trace import (
    FLUSH_EVERY,
    TRACE_EVENTS,
    TRACE_STAGE_BOUNDARIES,
    TraceEvent,
    TraceWriter,
    load_trace_events,
    read_trace_file,
    sample_tx,
    stitch,
    trace_files_under,
    trace_tx_ids,
)


class TestSampling:
    def test_extremes(self):
        assert sample_tx("any", 1.0)
        assert sample_tx("any", 2.0)
        assert not sample_tx("any", 0.0)
        assert not sample_tx("any", -1.0)

    def test_deterministic_across_calls(self):
        ids = [f"tx-{n}" for n in range(200)]
        first = [sample_tx(tx, 0.25) for tx in ids]
        second = [sample_tx(tx, 0.25) for tx in ids]
        assert first == second

    def test_rate_roughly_respected(self):
        ids = [f"tx-{n}" for n in range(2000)]
        kept = sum(sample_tx(tx, 0.25) for tx in ids)
        assert 0.15 * len(ids) < kept < 0.35 * len(ids)

    def test_higher_rate_is_superset(self):
        # A tx sampled at a low rate must also be sampled at any higher rate,
        # so mixed-rate deployments still stitch complete timelines.
        ids = [f"tx-{n}" for n in range(500)]
        for tx in ids:
            if sample_tx(tx, 0.1):
                assert sample_tx(tx, 0.5)


class TestTraceEvent:
    def test_json_roundtrip_full(self):
        event = TraceEvent(
            tx_id="client-1-7", event="committed", t=12.5, node=3, instance=2, view=1
        )
        assert TraceEvent.from_json(event.to_json()) == event

    def test_json_roundtrip_omits_optional(self):
        event = TraceEvent(tx_id="a", event="submitted", t=1.0, node=999)
        line = event.to_json()
        assert "instance" not in line and "view" not in line
        assert TraceEvent.from_json(line) == event


class TestTraceWriter:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, node=1, sample_rate=1.0)
        writer.emit("tx-a", "received", 1.0, instance=0)
        writer.emit("tx-a", "committed", 2.0, instance=0, view=0)
        writer.close()
        events = read_trace_file(path)
        assert [e.event for e in events] == ["received", "committed"]
        assert all(e.node == 1 for e in events)
        assert writer.events_written == 2

    def test_append_mode_preserves_existing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for round_ in range(2):
            writer = TraceWriter(path, node=round_, sample_rate=1.0)
            writer.emit("tx", "received", float(round_))
            writer.close()
        assert len(read_trace_file(path)) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "replica-2" / "trace.jsonl"
        writer = TraceWriter(path, node=2)
        writer.close()
        assert path.exists()

    def test_implicit_flush_after_batch(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, node=0)
        for n in range(FLUSH_EVERY):
            writer.emit(f"tx-{n}", "received", float(n))
        # Buffer hit FLUSH_EVERY: events are on disk without close().
        assert len(read_trace_file(path)) == FLUSH_EVERY
        writer.close()

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, node=0)
        writer.close()
        writer.emit("tx", "received", 1.0)
        writer.close()
        assert read_trace_file(path) == []


class TestReading:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = TraceEvent(tx_id="tx", event="received", t=1.0, node=0).to_json()
        path.write_text(good + "\n" + '{"tx": "tx", "event": "comm')
        events = read_trace_file(path)
        assert len(events) == 1
        assert events[0].event == "received"

    def test_missing_file_is_empty(self, tmp_path):
        assert read_trace_file(tmp_path / "nope.jsonl") == []

    def test_trace_files_under_globs_recursively(self, tmp_path):
        (tmp_path / "replica-0").mkdir()
        (tmp_path / "client").mkdir()
        (tmp_path / "replica-0" / "trace.jsonl").write_text("")
        (tmp_path / "client" / "trace.jsonl").write_text("")
        (tmp_path / "replica-0" / "metrics.jsonl").write_text("")
        found = trace_files_under(tmp_path)
        assert len(found) == 2
        assert all(p.name == "trace.jsonl" for p in found)

    def test_load_trace_events_merges_directory(self, tmp_path):
        for node in range(2):
            directory = tmp_path / f"replica-{node}"
            writer = TraceWriter(directory / "trace.jsonl", node=node)
            writer.emit("tx", "received", float(node))
            writer.close()
        events = load_trace_events(tmp_path)
        assert sorted(e.node for e in events) == [0, 1]


def _pipeline_events() -> list[TraceEvent]:
    """A full eight-event journey spread over client + three replicas."""
    times = {name: 1.0 + 0.1 * index for index, name in enumerate(TRACE_EVENTS)}
    events = [TraceEvent(tx_id="client-1-1", event="submitted", t=times["submitted"], node=999)]
    for node in range(3):
        for name in TRACE_EVENTS[1:-1]:
            # Replica 0 is fastest; later receipts must not win stitching.
            events.append(
                TraceEvent(
                    tx_id="client-1-1", event=name, t=times[name] + 0.01 * node, node=node
                )
            )
    events.append(TraceEvent(tx_id="client-1-1", event="replied", t=times["replied"], node=999))
    return events


class TestStitching:
    def test_first_receipt_wins(self):
        stitched = stitch(_pipeline_events(), "client-1-1")
        assert stitched is not None
        received = stitched.first("received")
        assert received is not None and received.node == 0
        assert stitched.start == pytest.approx(1.0)

    def test_stage_durations_cover_all_five_stages(self):
        stitched = stitch(_pipeline_events(), "client-1-1")
        assert stitched is not None
        durations = stitched.stage_durations()
        assert set(durations) == {stage for stage, _, _ in TRACE_STAGE_BOUNDARIES}
        # Events are 0.1 s apart; a stage spans one step per intermediate
        # event between its boundaries (prepared / bar_released).
        index = {name: position for position, name in enumerate(TRACE_EVENTS)}
        for stage, start_name, end_name in TRACE_STAGE_BOUNDARIES:
            expected = 0.1 * (index[end_name] - index[start_name])
            assert durations[stage] == pytest.approx(expected, abs=1e-9)

    def test_partial_journey_reports_partial_stages(self):
        events = [
            TraceEvent(tx_id="t", event="submitted", t=1.0, node=999),
            TraceEvent(tx_id="t", event="received", t=1.2, node=0),
        ]
        stitched = stitch(events, "t")
        assert stitched is not None
        assert stitched.stage_durations() == {"send": pytest.approx(0.2)}

    def test_prefix_match(self):
        stitched = stitch(_pipeline_events(), "client-1")
        assert stitched is not None
        assert stitched.tx_id == "client-1-1"

    def test_ambiguous_prefix_raises(self):
        events = [
            TraceEvent(tx_id="client-1-1", event="submitted", t=1.0, node=999),
            TraceEvent(tx_id="client-1-2", event="submitted", t=2.0, node=999),
        ]
        with pytest.raises(ValueError, match="ambiguous"):
            stitch(events, "client-1")

    def test_no_match_returns_none(self):
        assert stitch(_pipeline_events(), "zzz") is None

    def test_lines_render_events_and_stages(self):
        stitched = stitch(_pipeline_events(), "client-1-1")
        assert stitched is not None
        rendered = "\n".join(stitched.lines())
        for name in TRACE_EVENTS:
            assert name in rendered
        assert "stages:" in rendered

    def test_trace_tx_ids_sorted_distinct(self):
        events = [
            TraceEvent(tx_id="b", event="submitted", t=1.0, node=0),
            TraceEvent(tx_id="a", event="submitted", t=1.0, node=0),
            TraceEvent(tx_id="b", event="received", t=2.0, node=1),
        ]
        assert trace_tx_ids(events) == ["a", "b"]
