"""Tests for structured (text / JSON-lines) logging setup."""

import io
import json
import logging

import pytest

from repro.obs.logging import setup_logging


@pytest.fixture(autouse=True)
def _clean_root_handlers():
    """Remove any repro-obs handlers this test installs on the root logger."""
    root = logging.getLogger()
    before_level = root.level
    yield
    for handler in list(root.handlers):
        if (handler.get_name() or "").startswith("repro-obs-"):
            root.removeHandler(handler)
    root.setLevel(before_level)


class TestSetupLogging:
    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError):
            setup_logging("loud")
        with pytest.raises(ValueError):
            setup_logging("info", "yaml")

    def test_text_format_installs_single_handler(self):
        stream = io.StringIO()
        setup_logging("info", "text", stream=stream)
        setup_logging("info", "text", stream=stream)  # idempotent
        root = logging.getLogger()
        ours = [
            h for h in root.handlers if (h.get_name() or "").startswith("repro-obs-")
        ]
        assert len(ours) == 1

    def test_switching_format_replaces_handler(self):
        stream = io.StringIO()
        setup_logging("info", "text", stream=stream)
        setup_logging("info", "json", stream=stream)
        root = logging.getLogger()
        ours = [
            h for h in root.handlers if (h.get_name() or "").startswith("repro-obs-")
        ]
        assert len(ours) == 1
        assert ours[0].get_name() == "repro-obs-json"

    def test_json_lines_parse_and_merge_context(self):
        stream = io.StringIO()
        setup_logging("info", "json", stream=stream, context={"replica": 2})
        logging.getLogger("repro.test").info("replica %d started", 2)
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["msg"] == "replica 2 started"
        assert record["replica"] == 2
        assert isinstance(record["t"], float)

    def test_level_threshold_filters(self):
        stream = io.StringIO()
        setup_logging("warning", "json", stream=stream)
        logging.getLogger("repro.test").info("suppressed")
        logging.getLogger("repro.test").warning("kept")
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 1
        assert json.loads(lines[0])["msg"] == "kept"

    def test_exception_rendered_in_json(self):
        stream = io.StringIO()
        setup_logging("info", "json", stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logging.getLogger("repro.test").exception("failed")
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "error"
        assert "RuntimeError: boom" in record["exc"]
