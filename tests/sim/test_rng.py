"""Tests for the deterministic random-number utilities."""

import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.sim.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(7)
        b = DeterministicRNG(7)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = DeterministicRNG(7)
        b = DeterministicRNG(8)
        assert [a.random() for _ in range(20)] != [b.random() for _ in range(20)]

    def test_fork_is_deterministic_and_independent(self):
        root_a = DeterministicRNG(3)
        root_b = DeterministicRNG(3)
        fork_a = root_a.fork("network")
        fork_b = root_b.fork("network")
        assert [fork_a.random() for _ in range(5)] == [fork_b.random() for _ in range(5)]
        other = DeterministicRNG(3).fork("workload")
        assert other.random() != DeterministicRNG(3).fork("network").random()

    def test_fork_is_stable_across_interpreter_processes(self):
        """Forked seeds must not depend on ``PYTHONHASHSEED``.

        Built-in ``hash()`` of strings is randomised per process; deriving
        stream seeds from it would make experiment results (and the engine's
        spec-hash cache) irreproducible across invocations.
        """
        code = (
            "from repro.sim.rng import DeterministicRNG;"
            "print(DeterministicRNG(3).fork('network').seed)"
        )
        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        seeds = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src_dir)
            result = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            seeds.add(result.stdout.strip())
        assert len(seeds) == 1


class TestDistributions:
    def test_uniform_bounds(self):
        rng = DeterministicRNG(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds_inclusive(self):
        rng = DeterministicRNG(1)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_exponential_mean_is_positive(self):
        rng = DeterministicRNG(2)
        samples = [rng.exponential(0.5) for _ in range(2000)]
        assert all(s >= 0 for s in samples)
        assert 0.4 < sum(samples) / len(samples) < 0.6

    def test_exponential_zero_mean_returns_zero(self):
        rng = DeterministicRNG(2)
        assert rng.exponential(0.0) == 0.0

    def test_lognormal_jitter_positive_and_centered(self):
        rng = DeterministicRNG(3)
        samples = [rng.lognormal_jitter(1.0, 0.2) for _ in range(2000)]
        assert all(s > 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert 0.9 < mean < 1.15

    def test_lognormal_jitter_zero_scale(self):
        assert DeterministicRNG(0).lognormal_jitter(0.0) == 0.0

    def test_choice_and_sample(self):
        rng = DeterministicRNG(4)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sampled = rng.sample(items, 2)
        assert len(sampled) == 2
        assert len(set(sampled)) == 2

    def test_shuffle_preserves_elements(self):
        rng = DeterministicRNG(5)
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))


class TestZipf:
    def test_zipf_index_within_population(self):
        rng = DeterministicRNG(6)
        for _ in range(500):
            assert 0 <= rng.zipf_index(100, 1.0) < 100

    def test_zipf_skews_towards_low_indices(self):
        rng = DeterministicRNG(6)
        samples = [rng.zipf_index(1000, 1.0) for _ in range(5000)]
        low = sum(1 for s in samples if s < 10)
        high = sum(1 for s in samples if s >= 990)
        assert low > high * 5

    def test_zipf_uniform_when_exponent_zero(self):
        rng = DeterministicRNG(7)
        samples = [rng.zipf_index(10, 0.0) for _ in range(5000)]
        counts = [samples.count(i) for i in range(10)]
        assert min(counts) > 300

    def test_zipf_rejects_empty_population(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).zipf_index(0)


class TestOrderStatistic:
    def test_order_statistic_selects_kth_smallest(self):
        rng = DeterministicRNG(0)
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert rng.order_statistic(samples, 0) == 1.0
        assert rng.order_statistic(samples, 2) == 3.0
        assert rng.order_statistic(samples, 4) == 5.0

    def test_order_statistic_clamps_out_of_range(self):
        rng = DeterministicRNG(0)
        assert rng.order_statistic([1.0, 2.0], 10) == 2.0
        assert rng.order_statistic([1.0, 2.0], -3) == 1.0

    def test_order_statistic_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).order_statistic([], 0)
