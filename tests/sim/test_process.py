"""Tests for the Process actor abstraction."""

import pytest

from repro.errors import SimulationError
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Recorder(Process):
    """Collects every message delivered to it."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.inbox = []

    def receive(self, sender, message):
        self.inbox.append((sender, message, self.now))


def build_pair():
    sim = Simulator()
    network = Network(sim, latency_model=FixedLatencyModel(0.01))
    a, b = Recorder(0), Recorder(1)
    network.register(a)
    network.register(b)
    return sim, network, a, b


class TestProcessWiring:
    def test_unattached_process_has_no_network(self):
        lonely = Recorder(9)
        with pytest.raises(SimulationError):
            _ = lonely.network

    def test_send_delivers_message(self):
        sim, _, a, b = build_pair()
        a.send(1, "hello")
        sim.run()
        sender, payload, delivered_at = b.inbox[0]
        assert (sender, payload) == (0, "hello")
        assert delivered_at == pytest.approx(0.01, rel=1e-3)

    def test_broadcast_excludes_self_by_default(self):
        sim, _, a, b = build_pair()
        a.broadcast("ping")
        sim.run()
        assert len(b.inbox) == 1
        assert a.inbox == []

    def test_broadcast_can_include_self(self):
        sim, _, a, b = build_pair()
        a.broadcast("ping", include_self=True)
        sim.run()
        assert len(a.inbox) == 1
        assert len(b.inbox) == 1

    def test_receive_must_be_overridden(self):
        sim = Simulator()
        network = Network(sim)
        plain = Process(5)
        network.register(plain)
        with pytest.raises(NotImplementedError):
            plain.receive(0, "x")


class TestTimers:
    def test_set_timer_fires_after_delay(self):
        sim, _, a, _ = build_pair()
        fired = []
        a.set_timer(0.5, lambda: fired.append(a.now))
        sim.run()
        assert fired == [0.5]

    def test_cancel_timers_stops_pending_callbacks(self):
        sim, _, a, _ = build_pair()
        fired = []
        a.set_timer(0.5, lambda: fired.append(1))
        a.set_timer(0.7, lambda: fired.append(2))
        a.cancel_timers()
        sim.run()
        assert fired == []

    def test_now_tracks_simulator_clock(self):
        sim, _, a, _ = build_pair()
        observed = []
        a.set_timer(1.25, lambda: observed.append(a.now))
        sim.run()
        assert observed == [1.25]
        assert a.now == sim.now
