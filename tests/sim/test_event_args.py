"""Slotted events and argument-carrying callbacks."""

from __future__ import annotations

from repro.sim.events import Event
from repro.sim.simulator import Simulator


class TestScheduleWithArgs:
    def test_callback_receives_positional_args(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "payload")
        sim.schedule(2.0, lambda: seen.append("closure"))
        sim.run()
        assert seen == ["payload", "closure"]

    def test_schedule_at_forwards_args(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.0, lambda a, b: seen.append((a, b)), 1, 2)
        sim.run()
        assert seen == [(1, 2)]

    def test_cancelled_args_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, seen.append, "x")
        handle.cancel()
        sim.run()
        assert seen == []

    def test_priority_still_keyword_only(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "late", priority=5)
        sim.schedule(1.0, order.append, "early", priority=-5)
        sim.run()
        assert order == ["early", "late"]


class TestEventOrdering:
    def test_events_order_by_time_priority_sequence(self):
        a = Event(time=1.0, priority=0, sequence=1)
        b = Event(time=1.0, priority=0, sequence=2)
        c = Event(time=1.0, priority=-1, sequence=3)
        d = Event(time=0.5, priority=9, sequence=4)
        assert d < c < a < b
        assert a <= a and a >= a and a == Event(time=1.0, priority=0, sequence=1)

    def test_events_are_slotted(self):
        event = Event(time=0.0)
        assert not hasattr(event, "__dict__")

    def test_repr_mentions_schedule_key(self):
        event = Event(time=2.5, priority=1, sequence=7)
        assert "2.5" in repr(event) and "7" in repr(event)
