"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_schedule_runs_callback_at_requested_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(2.0, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties_before_sequence(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("normal"), priority=1)
        sim.schedule(1.0, lambda: order.append("urgent"), priority=0)
        sim.run()
        assert order == ["urgent", "normal"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_infinite_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_schedule_at_past_time_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_from_callbacks(self):
        sim = Simulator()
        times = []

        def chain(depth):
            times.append(sim.now)
            if depth:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert times == [0.0, 1.0, 2.0, 3.0]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        stopped_at = sim.run(until=2.0)
        assert stopped_at == 2.0
        assert fired == []
        assert sim.pending_events == 1

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run(until=2.0)
        sim.run()
        assert fired == [5.0]

    def test_max_events_bounds_processing(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_clear_drops_pending_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.pending_events == 0

    def test_processed_event_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_clock_never_goes_backwards(self):
        sim = Simulator()
        observed = []
        sim.schedule(2.0, lambda: observed.append(sim.now))
        sim.schedule(2.0, lambda: observed.append(sim.now))
        sim.schedule(4.0, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_handle_reports_time_and_activity(self):
        sim = Simulator()
        handle = sim.schedule(3.0, lambda: None)
        assert handle.time == 3.0
        assert handle.active
        handle.cancel()
        assert not handle.active

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()
        assert sim.pending_events == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        cancel = sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        cancel.cancel()
        assert sim.pending_events == 1
        assert sim.cancelled_pending_events == 1
        # Double-cancel is not double-counted.
        cancel.cancel()
        assert sim.pending_events == 1
        assert keep.active

    def test_cancelled_count_drains_as_events_are_skipped(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        for handle in handles[1:]:
            handle.cancel()
        sim.run()
        assert sim.pending_events == 0
        assert sim.cancelled_pending_events == 0
        assert sim.processed_events == 1

    def test_clear_resets_cancelled_accounting(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.clear()
        assert sim.pending_events == 0
        assert sim.cancelled_pending_events == 0

    def test_compaction_removes_dominating_cancelled_events(self):
        sim = Simulator()
        doomed = [sim.schedule(float(i + 10), lambda: None) for i in range(2000)]
        survivors = [sim.schedule(float(i + 1), lambda: None) for i in range(3)]
        for handle in doomed:
            handle.cancel()
        # Lazy deletion compacted the heap once cancellations dominated.
        assert sim.cancelled_pending_events < 2000
        assert sim.pending_events == 3
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run(until=5.0)
        assert fired == [0.5]
        assert sim.processed_events == 4
        assert all(not handle.active for handle in doomed)
        assert all(handle.active for handle in survivors)  # cancel-wise still live

    def test_compaction_preserves_event_order(self):
        sim = Simulator()
        order = []
        doomed = [
            sim.schedule(float(i) / 10.0, lambda: order.append("doomed"))
            for i in range(3000)
        ]
        for i in range(20):
            sim.schedule(float(i), lambda i=i: order.append(i))
        for handle in doomed:
            handle.cancel()
        sim.run()
        assert order == list(range(20))
