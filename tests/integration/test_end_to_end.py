"""Integration tests spanning workload -> cluster -> consensus -> metrics."""

import pytest

from repro.cluster.builder import MessageCluster, MessageClusterConfig
from repro.cluster.faults import FaultPlan
from repro.cluster.pipeline import PipelineConfig, run_pipeline_experiment
from repro.protocols.registry import PROTOCOL_NAMES
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


class TestMessageClusterAcrossProtocols:
    @pytest.mark.parametrize("protocol", ["orthrus", "iss", "ladon"])
    def test_full_stack_confirms_everything_and_agrees(self, protocol):
        config = MessageClusterConfig(
            protocol=protocol,
            num_replicas=4,
            batch_size=8,
            seed=21,
            workload=WorkloadConfig(num_accounts=96, num_shared_objects=8, seed=21),
        )
        cluster = MessageCluster(config)
        trace = EthereumStyleWorkload(config.workload).generate(90)
        cluster.submit_transactions(trace.transactions, rate_tps=150)
        metrics = cluster.run(15.0)
        assert metrics.confirmed == 90
        assert cluster.client.completed == 90
        digests = {replica.core.store.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1

    def test_orthrus_confirms_payments_before_contracts(self):
        config = MessageClusterConfig(
            protocol="orthrus",
            num_replicas=4,
            batch_size=8,
            seed=9,
            workload=WorkloadConfig(num_accounts=96, num_shared_objects=8, seed=9),
        )
        cluster = MessageCluster(config)
        trace = EthereumStyleWorkload(config.workload).generate(80)
        cluster.submit_transactions(trace.transactions, rate_tps=400)
        metrics = cluster.run(15.0)
        observer = cluster.replicas[0]
        payment_latencies = []
        contract_latencies = []
        for timeline in metrics_timelines(cluster):
            tx = next((t for t in trace.transactions if t.tx_id == timeline.tx_id), None)
            if tx is None or timeline.confirmed_at is None or timeline.submitted_at is None:
                continue
            latency = timeline.confirmed_at - timeline.submitted_at
            (payment_latencies if tx.is_payment else contract_latencies).append(latency)
        assert payment_latencies and contract_latencies
        assert (
            sum(payment_latencies) / len(payment_latencies)
            <= sum(contract_latencies) / len(contract_latencies)
        )
        assert observer.core.partial_confirmations > 0


def metrics_timelines(cluster):
    return cluster.metrics.latency.confirmed_timelines()


class TestPipelineHeadlineClaims:
    """Small-scale checks of the paper's qualitative claims (Sec. VII-B)."""

    def _run(self, protocol, straggler, duration=30.0, warmup=6.0):
        faults = FaultPlan.with_straggler(instance=1) if straggler else FaultPlan.none()
        return run_pipeline_experiment(
            PipelineConfig(
                protocol=protocol,
                num_replicas=8,
                environment="wan",
                samples_per_block=4,
                duration=duration,
                warmup=warmup,
                seed=2,
                workload=WorkloadConfig(num_accounts=3000, seed=33),
                faults=faults,
            )
        )

    def test_straggler_collapses_predetermined_but_not_orthrus(self):
        orthrus_clean = self._run("orthrus", straggler=False)
        orthrus_straggler = self._run("orthrus", straggler=True, duration=60.0, warmup=12.0)
        iss_clean = self._run("iss", straggler=False)
        iss_straggler = self._run("iss", straggler=True, duration=60.0, warmup=12.0)
        iss_drop = 1 - iss_straggler.throughput_tps / iss_clean.throughput_tps
        orthrus_drop = 1 - orthrus_straggler.throughput_tps / orthrus_clean.throughput_tps
        assert iss_drop > 0.5
        assert orthrus_drop < 0.35
        assert orthrus_straggler.latency.mean < iss_straggler.latency.mean

    def test_orthrus_latency_not_worse_than_predetermined_without_straggler(self):
        orthrus = self._run("orthrus", straggler=False)
        iss = self._run("iss", straggler=False)
        assert orthrus.latency.mean <= iss.latency.mean * 1.1

    def test_all_protocols_have_comparable_clean_throughput(self):
        rates = {
            protocol: self._run(protocol, straggler=False).throughput_tps
            for protocol in PROTOCOL_NAMES
        }
        fastest = max(rates.values())
        slowest = min(rates.values())
        assert slowest > 0.5 * fastest


class TestCrossFidelityConsistency:
    def test_both_drivers_confirm_transactions_for_orthrus(self):
        pipeline_metrics = run_pipeline_experiment(
            PipelineConfig(
                protocol="orthrus",
                num_replicas=4,
                environment="lan",
                samples_per_block=4,
                duration=10.0,
                warmup=2.0,
                seed=4,
                workload=WorkloadConfig(num_accounts=500, seed=5),
            )
        )
        config = MessageClusterConfig(
            protocol="orthrus",
            num_replicas=4,
            batch_size=8,
            environment="lan",
            seed=4,
            workload=WorkloadConfig(num_accounts=500, num_shared_objects=16, seed=5),
        )
        cluster = MessageCluster(config)
        trace = EthereumStyleWorkload(config.workload).generate(60)
        cluster.submit_transactions(trace.transactions, rate_tps=300)
        message_metrics = cluster.run(10.0)
        assert pipeline_metrics.confirmed > 0
        assert message_metrics.confirmed == 60
        # Both fidelities exercise the same partial/global split for Orthrus.
        assert pipeline_metrics.partial_path > 0
        assert message_metrics.partial_path > 0
