"""Tests for the message-level cluster (full PBFT replicas + clients)."""

import pytest

from repro.cluster.builder import MessageCluster, MessageClusterConfig
from repro.cluster.faults import FaultPlan
from repro.errors import ExperimentError
from repro.ledger.transactions import contract_call, simple_transfer
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


def small_cluster(**overrides):
    params = dict(
        protocol="orthrus",
        num_replicas=4,
        batch_size=8,
        seed=3,
        workload=WorkloadConfig(num_accounts=64, num_shared_objects=8, seed=3),
    )
    params.update(overrides)
    return MessageCluster(MessageClusterConfig(**params))


class TestConfig:
    def test_requires_bft_minimum(self):
        with pytest.raises(ExperimentError):
            MessageClusterConfig(num_replicas=3)

    def test_instances_default_to_replica_count(self):
        assert MessageClusterConfig(num_replicas=5).instances == 5
        assert MessageClusterConfig(num_replicas=5, num_instances=2).instances == 2


class TestHappyPath:
    def test_all_transactions_confirmed_and_replied(self):
        cluster = small_cluster()
        trace = EthereumStyleWorkload(cluster.config.workload).generate(80)
        cluster.submit_transactions(trace.transactions, rate_tps=200)
        metrics = cluster.run(12.0)
        assert metrics.confirmed == 80
        assert cluster.client.completed == 80
        assert metrics.latency.count == 80
        assert metrics.latency.mean > 0

    def test_all_replicas_agree_on_state(self):
        cluster = small_cluster()
        trace = EthereumStyleWorkload(cluster.config.workload).generate(60)
        cluster.submit_transactions(trace.transactions, rate_tps=300)
        cluster.run(12.0)
        digests = {replica.core.store.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1

    def test_specific_transfer_applied_exactly_once_everywhere(self):
        cluster = small_cluster()
        tx = simple_transfer("acct-000001", "acct-000002", 7, tx_id="x-transfer")
        cluster.submit_transactions([tx])
        cluster.run(5.0)
        for replica in cluster.replicas:
            assert replica.core.store.balance_of("acct-000002") == (
                cluster.config.workload.initial_balance + 7
            )

    def test_contract_transaction_executes_on_all_replicas(self):
        cluster = small_cluster()
        ctx = contract_call({"acct-000003": 5}, {"contract-00001": 99}, tx_id="x-contract")
        cluster.submit_transactions([ctx])
        cluster.run(8.0)
        for replica in cluster.replicas:
            assert replica.core.store.balance_of("contract-00001") == 99

    def test_network_stats_exposed(self):
        cluster = small_cluster()
        trace = EthereumStyleWorkload(cluster.config.workload).generate(10)
        cluster.submit_transactions(trace.transactions)
        metrics = cluster.run(5.0)
        assert metrics.extra["messages_sent"] > 0
        assert metrics.extra["bytes_sent"] > 0

    def test_baseline_protocol_also_converges(self):
        cluster = small_cluster(protocol="iss")
        trace = EthereumStyleWorkload(cluster.config.workload).generate(40)
        cluster.submit_transactions(trace.transactions, rate_tps=200)
        metrics = cluster.run(12.0)
        assert metrics.confirmed == 40
        digests = {replica.core.store.state_digest() for replica in cluster.replicas}
        assert len(digests) == 1


class TestFaultTolerance:
    def test_leader_crash_triggers_view_change_and_recovery(self):
        cluster = small_cluster(
            view_change_timeout=2.0,
            faults=FaultPlan(crashes={1: 1.0}, view_change_timeout=2.0),
        )
        trace = EthereumStyleWorkload(cluster.config.workload).generate(100)
        cluster.submit_transactions(trace.transactions, rate_tps=50)
        metrics = cluster.run(25.0)
        assert metrics.confirmed == 100
        honest = [replica for replica in cluster.replicas if replica.node_id != 1]
        assert any(replica.endpoints[1].view > 0 for replica in honest)
        digests = {replica.core.store.state_digest() for replica in honest}
        assert len(digests) == 1

    def test_straggler_replica_slows_but_does_not_block_orthrus(self):
        cluster = small_cluster(faults=FaultPlan(stragglers={2: 10.0}))
        trace = EthereumStyleWorkload(cluster.config.workload).generate(60)
        cluster.submit_transactions(trace.transactions, rate_tps=200)
        metrics = cluster.run(20.0)
        assert metrics.confirmed >= 55

    def test_run_until_confirmed_helper(self):
        cluster = small_cluster()
        trace = EthereumStyleWorkload(cluster.config.workload).generate(20)
        cluster.submit_transactions(trace.transactions)
        elapsed = cluster.run_until_confirmed(20, timeout=30.0)
        assert cluster.metrics.committed + cluster.metrics.rejected >= 20
        assert elapsed <= 30.0


class TestViewChangeOrderingSafety:
    def test_no_rank_regression_across_leader_crash(self):
        """The new leader must rank above the crashed leader's re-proposals.

        A fresh post-view-change block with a rank below a re-proposed
        block's rank would break Ladon's strictly-increasing-per-instance
        precondition and diverge the global log across replicas; the orderer
        counts such regressions, and a crashed-leader run must produce none.
        """
        cluster = small_cluster(
            view_change_timeout=2.0,
            faults=FaultPlan(crashes={1: 1.0}, view_change_timeout=2.0),
        )
        trace = EthereumStyleWorkload(cluster.config.workload).generate(100)
        cluster.submit_transactions(trace.transactions, rate_tps=50)
        metrics = cluster.run(25.0)
        assert metrics.confirmed == 100
        honest = [replica for replica in cluster.replicas if replica.node_id != 1]
        assert any(replica.endpoints[1].view > 0 for replica in honest)
        for replica in honest:
            assert replica.core.global_orderer.stats.rank_regressions == 0

    def test_demoted_leader_requeues_and_releases_reservations(self):
        """A demoted (but alive) leader keeps no leaked in-flight state."""
        cluster = small_cluster(view_change_timeout=1.0)
        cluster.start()
        replica = cluster.replicas[1]  # leader of instance 1 in view 0
        trace = EthereumStyleWorkload(cluster.config.workload).generate(30)
        for tx in trace.transactions:
            for peer in cluster.replicas:
                peer.core.submit(tx)
        pulled = replica.core.select_batch(1, 8)
        assert pulled
        assert replica.core._inflight_debits  # reservations held
        in_flight_ids = {tx.tx_id for tx in pulled}

        # Force a leader change away from replica 1 on instance 1.
        endpoint = replica.endpoints[1]
        endpoint.view = 1
        replica._on_leader_change(1, endpoint.leader())

        assert replica.core._inflight_debits == {}
        bucket = replica.core.buckets[1]
        assert not bucket.in_flight_txs()
        # The pulled transactions are back at the front of the bucket.
        queued = [tx.tx_id for tx in bucket.peek_all()]
        assert set(queued[: len(in_flight_ids)]) == in_flight_ids
