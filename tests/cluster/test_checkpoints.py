"""Tests for the epoch checkpoint exchange path in the message-level replica.

Covers the replica-side :class:`~repro.core.epochs.CheckpointQuorum` wiring:
vote collection from ``CheckpointMessage``s, duplicate- and conflicting-vote
handling, the broadcast path that drains ``core.pending_checkpoints``, and an
end-to-end run in which a stable checkpoint forms from real epoch completion.
"""


from repro.cluster.builder import MessageCluster, MessageClusterConfig
from repro.cluster.replica import MultiBFTReplica
from repro.core.config import CoreConfig
from repro.core.epochs import Checkpoint
from repro.net.latency import latency_model_for
from repro.net.network import Network
from repro.protocols.registry import build_core
from repro.sb.pbft.messages import CheckpointMessage
from repro.sim.simulator import Simulator
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

NUM_REPLICAS = 4
#: For n=4, f=1, so a stable checkpoint needs 2f+1 = 3 matching votes.
QUORUM = 3


def checkpoint_vote(sender: int, epoch: int = 0, digest: str = "digest-a") -> CheckpointMessage:
    return CheckpointMessage(
        instance=0, view=0, sender=sender, epoch=epoch, state_digest=digest
    )


def build_replicas(count: int = NUM_REPLICAS) -> tuple[Simulator, list[MultiBFTReplica]]:
    """Wire ``count`` replicas with real cores onto one simulated network."""
    sim = Simulator(seed=5)
    network = Network(sim, latency_model=latency_model_for("lan"))
    replicas = []
    for replica_id in range(count):
        core = build_core(
            "orthrus",
            CoreConfig(num_instances=count, batch_size=4, epoch_length=4),
        )
        replica = MultiBFTReplica(
            replica_id=replica_id, num_replicas=count, core=core
        )
        network.register(replica)
        replicas.append(replica)
    return sim, replicas


class TestCheckpointVoting:
    def test_quorum_of_distinct_votes_forms_stable_checkpoint(self):
        _, replicas = build_replicas()
        replica = replicas[0]
        for sender in range(1, QUORUM + 1):
            assert not replica.stable_checkpoint(0)
            replica.receive(sender, checkpoint_vote(sender))
        assert replica.stable_checkpoint(0)

    def test_duplicate_votes_from_one_replica_do_not_count_twice(self):
        _, replicas = build_replicas()
        replica = replicas[0]
        # Two distinct voters, one of them voting three times: still 2 < 2f+1.
        replica.receive(1, checkpoint_vote(1))
        replica.receive(1, checkpoint_vote(1))
        replica.receive(1, checkpoint_vote(1))
        replica.receive(2, checkpoint_vote(2))
        assert not replica.stable_checkpoint(0)
        replica.receive(3, checkpoint_vote(3))
        assert replica.stable_checkpoint(0)

    def test_conflicting_digests_do_not_combine_into_a_quorum(self):
        _, replicas = build_replicas()
        replica = replicas[0]
        replica.receive(1, checkpoint_vote(1, digest="digest-a"))
        replica.receive(2, checkpoint_vote(2, digest="digest-b"))
        replica.receive(3, checkpoint_vote(3, digest="digest-b"))
        assert not replica.stable_checkpoint(0)
        # A third matching vote for one digest closes the epoch.
        replica.receive(0, checkpoint_vote(0, digest="digest-b"))
        assert replica.stable_checkpoint(0)

    def test_epochs_are_tracked_independently(self):
        _, replicas = build_replicas()
        replica = replicas[0]
        for sender in range(1, QUORUM + 1):
            replica.receive(sender, checkpoint_vote(sender, epoch=2))
        assert replica.stable_checkpoint(2)
        assert not replica.stable_checkpoint(0)
        assert not replica.stable_checkpoint(1)

    def test_crashed_replica_ignores_votes(self):
        _, replicas = build_replicas()
        replica = replicas[0]
        replica.crash()
        for sender in range(1, QUORUM + 1):
            replica.receive(sender, checkpoint_vote(sender))
        assert not replica.stable_checkpoint(0)


class TestCheckpointBroadcast:
    def test_broadcast_drains_pending_and_self_votes(self):
        sim, replicas = build_replicas()
        checkpoint = Checkpoint(
            epoch=0, frontier=(3, 3, 3, 3), state_digest="state-1"
        )
        replicas[0].core.pending_checkpoints.append(checkpoint)
        replicas[0]._broadcast_checkpoints()
        assert replicas[0].core.pending_checkpoints == []
        # One vote (its own) is not a quorum.
        assert not replicas[0].stable_checkpoint(0)
        sim.run(until=2.0)
        # Receivers hold a single vote each; no quorum anywhere yet.
        assert all(not replica.stable_checkpoint(0) for replica in replicas)

    def test_quorum_of_broadcasters_stabilises_every_replica(self):
        sim, replicas = build_replicas()
        checkpoint = Checkpoint(
            epoch=0, frontier=(3, 3, 3, 3), state_digest="state-1"
        )
        for replica in replicas[:QUORUM]:
            replica.core.pending_checkpoints.append(checkpoint)
            replica._broadcast_checkpoints()
        sim.run(until=2.0)
        # Every replica (including the non-broadcaster) collected 2f+1
        # matching digests, so the checkpoint is stable cluster-wide.
        assert all(replica.stable_checkpoint(0) for replica in replicas)


class TestCheckpointEndToEnd:
    def test_stable_checkpoint_forms_from_real_epoch_completion(self):
        config = MessageClusterConfig(
            protocol="orthrus",
            num_replicas=NUM_REPLICAS,
            batch_size=4,
            epoch_length=2,
            seed=3,
            workload=WorkloadConfig(num_accounts=64, num_shared_objects=8, seed=3),
        )
        cluster = MessageCluster(config)
        trace = EthereumStyleWorkload(config.workload).generate(120)
        cluster.submit_transactions(trace.transactions, rate_tps=300)
        cluster.run(20.0)
        stable = [replica.stable_checkpoint(0) for replica in cluster.replicas]
        assert all(stable), f"epoch 0 not stable on all replicas: {stable}"
