"""Tests for the pipeline (quorum fidelity) cluster driver."""

import pytest

from repro.cluster.faults import FaultPlan
from repro.cluster.pipeline import PipelineCluster, PipelineConfig, run_pipeline_experiment
from repro.errors import ExperimentError
from repro.workload.config import WorkloadConfig


def small_config(**overrides):
    params = dict(
        protocol="orthrus",
        num_replicas=8,
        environment="wan",
        samples_per_block=4,
        duration=15.0,
        warmup=3.0,
        seed=5,
        workload=WorkloadConfig(num_accounts=2000, seed=11),
    )
    params.update(overrides)
    return PipelineConfig(**params)


class TestConfigValidation:
    def test_rejects_tiny_clusters(self):
        with pytest.raises(ExperimentError):
            small_config(num_replicas=3)

    def test_rejects_inconsistent_windows(self):
        with pytest.raises(ExperimentError):
            small_config(duration=5.0, warmup=10.0)

    def test_rejects_oversized_samples(self):
        with pytest.raises(ExperimentError):
            small_config(samples_per_block=8192)

    def test_scale_factor(self):
        config = small_config(samples_per_block=8, represented_batch_size=4096)
        assert config.scale_factor == 512
        assert config.num_instances == config.num_replicas


class TestBasicRun:
    def test_run_produces_confirmations_and_metrics(self):
        metrics = run_pipeline_experiment(small_config())
        assert metrics.confirmed > 100
        assert metrics.throughput_tps > 0
        assert metrics.latency.mean > 0
        assert metrics.committed >= metrics.confirmed * 0.9
        assert set(metrics.stage_breakdown) == {
            "send",
            "preprocessing",
            "partial_ordering",
            "global_ordering",
            "reply",
        }

    def test_deterministic_given_seed(self):
        a = run_pipeline_experiment(small_config())
        b = run_pipeline_experiment(small_config())
        assert a.confirmed == b.confirmed
        assert a.throughput_tps == pytest.approx(b.throughput_tps)
        assert a.latency.mean == pytest.approx(b.latency.mean)

    def test_seed_changes_results(self):
        a = run_pipeline_experiment(small_config(seed=5))
        b = run_pipeline_experiment(small_config(seed=6))
        assert a.confirmed != b.confirmed or a.latency.mean != b.latency.mean

    def test_throughput_scaled_by_sampling_factor(self):
        config = small_config()
        cluster = PipelineCluster(config)
        metrics = cluster.run()
        sample_rate = metrics.extra["sample_confirmed"]
        assert metrics.throughput_tps <= config.scale_factor * sample_rate

    def test_orthrus_uses_partial_path(self):
        metrics = run_pipeline_experiment(small_config())
        assert metrics.partial_path > 0
        assert metrics.global_path > 0

    def test_baseline_uses_only_global_path(self):
        metrics = run_pipeline_experiment(small_config(protocol="iss"))
        assert metrics.partial_path == 0
        assert metrics.global_path == metrics.confirmed


class TestProtocolsUnderPipeline:
    @pytest.mark.parametrize("protocol", ["orthrus", "iss", "rcc", "mir", "dqbft", "ladon"])
    def test_every_protocol_confirms_transactions(self, protocol):
        metrics = run_pipeline_experiment(small_config(protocol=protocol, duration=12.0))
        assert metrics.confirmed > 50

    def test_token_conservation_for_payment_only_workload(self):
        # With a payment-only workload every confirmed transfer conserves the
        # owned token supply exactly; in-flight reservations are tracked by
        # the escrow log.  (Contract calls intentionally burn the call cost
        # into the contract domain, so the mixed workload is not conserving.)
        config = small_config(
            workload=WorkloadConfig(num_accounts=2000, seed=11, payment_fraction=1.0)
        )
        cluster = PipelineCluster(config)
        metrics = cluster.run()
        core = cluster.core
        initial_supply = (
            cluster.workload.config.num_accounts
            * cluster.workload.config.initial_balance
        )
        assert (
            core.store.total_owned_value() + core.escrow.total_reserved()
            == initial_supply
        )
        assert metrics.confirmed == core.confirmed_count


class TestFaultsUnderPipeline:
    def test_straggler_hurts_iss_more_than_orthrus(self):
        straggler = FaultPlan.with_straggler(instance=1)
        orthrus = run_pipeline_experiment(
            small_config(faults=straggler, duration=25.0, warmup=5.0)
        )
        iss = run_pipeline_experiment(
            small_config(protocol="iss", faults=straggler, duration=25.0, warmup=5.0)
        )
        assert orthrus.throughput_tps > iss.throughput_tps * 2
        assert orthrus.latency.mean < iss.latency.mean

    def test_crash_pauses_then_recovers(self):
        faults = FaultPlan.with_crashes([0], at_time=5.0, view_change_timeout=3.0)
        metrics = run_pipeline_experiment(
            small_config(faults=faults, duration=25.0, warmup=0.0)
        )
        # The instance led by replica 0 stops, then a new leader resumes, so
        # the run still confirms a healthy number of transactions.
        assert metrics.confirmed > 100

    def test_undetectable_faults_increase_latency(self):
        healthy = run_pipeline_experiment(small_config(duration=20.0))
        degraded = run_pipeline_experiment(
            small_config(faults=FaultPlan.with_undetectable(2), duration=20.0)
        )
        assert degraded.latency.mean > healthy.latency.mean

    def test_epoch_barrier_produces_checkpointed_progress(self):
        metrics = run_pipeline_experiment(
            small_config(epoch_blocks=4, duration=20.0)
        )
        assert metrics.confirmed > 50
