"""Tests for fault plans."""

from repro.cluster.faults import (
    PAPER_STRAGGLER_SLOWDOWN,
    PAPER_VIEW_CHANGE_TIMEOUT,
    FaultPlan,
)


class TestFaultPlan:
    def test_none_plan_is_healthy(self):
        plan = FaultPlan.none()
        assert plan.slowdown_of(0) == 1.0
        assert plan.crash_time_of(0) is None
        assert plan.undetectable_faults == 0
        assert plan.straggler_count == 0

    def test_straggler_plan_uses_paper_slowdown(self):
        plan = FaultPlan.with_straggler(instance=2)
        assert plan.slowdown_of(2) == PAPER_STRAGGLER_SLOWDOWN == 10.0
        assert plan.slowdown_of(0) == 1.0
        assert plan.straggler_count == 1

    def test_crash_plan(self):
        plan = FaultPlan.with_crashes([0, 1, 2], at_time=9.0)
        assert plan.crash_time_of(1) == 9.0
        assert plan.crash_time_of(5) is None
        assert plan.view_change_timeout == PAPER_VIEW_CHANGE_TIMEOUT == 10.0

    def test_undetectable_plan(self):
        plan = FaultPlan.with_undetectable(3)
        assert plan.undetectable_faults == 3
