"""Unit tests for the client node used by the message-level cluster."""

from repro.cluster.client import ClientNode
from repro.cluster.messages import ClientReply, ClientRequest
from repro.ledger.transactions import simple_transfer
from repro.metrics.summary import MetricsCollector
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class RecordingReplica(Process):
    """Stand-in replica that records requests and can send replies."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.requests = []

    def receive(self, sender, message):
        if isinstance(message, ClientRequest):
            self.requests.append(message)

    def reply(self, tx_id, committed=True):
        self.send_reply_to = None
        self.send(
            self.requests[-1].client_node,
            ClientReply(tx_id=tx_id, replica=self.node_id, committed=committed),
        )


def build(num_replicas=4, fanout=None):
    sim = Simulator()
    network = Network(sim, latency_model=FixedLatencyModel(0.001))
    replicas = [RecordingReplica(i) for i in range(num_replicas)]
    for replica in replicas:
        network.register(replica)
    metrics = MetricsCollector()
    client = ClientNode(
        node_id=num_replicas,
        replica_ids=[r.node_id for r in replicas],
        metrics=metrics,
        fanout=fanout,
    )
    network.register(client)
    return sim, replicas, client, metrics


class TestClientSubmission:
    def test_submit_broadcasts_to_all_replicas_by_default(self):
        sim, replicas, client, metrics = build()
        tx = simple_transfer("a", "b", 1, tx_id="t1")
        client.submit(tx)
        sim.run()
        assert all(len(r.requests) == 1 for r in replicas)
        assert metrics.latency.timeline("t1").submitted_at == 0.0
        assert client.submitted == 1
        assert client.pending_count() == 1

    def test_fanout_limits_targets(self):
        sim, replicas, client, _ = build(fanout=2)
        client.submit(simple_transfer("a", "b", 1, tx_id="t1"))
        sim.run()
        assert sum(len(r.requests) for r in replicas) == 2

    def test_submit_schedule_spreads_submissions(self):
        sim, replicas, client, metrics = build()
        txs = [simple_transfer("a", "b", 1, tx_id=f"t{i}") for i in range(3)]
        client.submit_schedule(txs, [0.1, 0.2, 0.3])
        sim.run()
        assert client.submitted == 3
        assert metrics.latency.timeline("t2").submitted_at == 0.3


class TestClientReplies:
    def test_reply_quorum_is_f_plus_one(self):
        sim, replicas, client, metrics = build()
        assert client.reply_quorum == 2
        tx = simple_transfer("a", "b", 1, tx_id="t1")
        client.submit(tx)
        sim.run()
        replicas[0].reply("t1")
        sim.run()
        assert client.completed == 0
        replicas[1].reply("t1")
        sim.run()
        assert client.completed == 1
        assert metrics.latency.timeline("t1").replied_at is not None

    def test_duplicate_replies_from_same_replica_do_not_count(self):
        sim, replicas, client, _ = build()
        client.submit(simple_transfer("a", "b", 1, tx_id="t1"))
        sim.run()
        replicas[0].reply("t1")
        replicas[0].reply("t1")
        sim.run()
        assert client.completed == 0

    def test_extra_replies_after_completion_are_ignored(self):
        sim, replicas, client, _ = build()
        client.submit(simple_transfer("a", "b", 1, tx_id="t1"))
        sim.run()
        for replica in replicas[:3]:
            replica.reply("t1")
        sim.run()
        assert client.completed == 1
        assert client.pending_count() == 0

    def test_non_reply_messages_ignored(self):
        sim, replicas, client, _ = build()
        client.receive(0, "not a reply")
        assert client.completed == 0
