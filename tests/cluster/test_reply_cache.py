"""Reply-cache eviction order and the evicted-entry fail-safe.

The bounded reply cache answers retransmitted requests for already-executed
transactions.  Two properties matter at the cap: eviction must discard the
*oldest* entries (dict insertion order — which cache hits must not disturb),
and a retransmission for an entry that *was* evicted must still be answered
(rebuilt from the core's terminal status) rather than silently dropped —
the bucket dedupe swallows a re-submit, so a drop would starve the client.
"""

from __future__ import annotations

from repro.cluster.messages import ClientReply, ClientRequest
from repro.cluster.replica import MultiBFTReplica
from repro.core.config import CoreConfig
from repro.core.outcomes import TxStatus
from repro.ledger.transactions import simple_transfer
from repro.protocols.registry import build_core


class FakeTimer:
    active = True

    def cancel(self):
        self.active = False


class RecordingTransport:
    """Minimal NodeTransport capturing sends for assertions."""

    def __init__(self):
        self.sent = []
        self.broadcasts = []

    def now(self):
        return 0.0

    def send(self, destination, message):
        self.sent.append((destination, message))

    def broadcast(self, message, include_self=False):
        self.broadcasts.append(message)

    def set_timer(self, delay, callback):
        return FakeTimer()

    def cancel_timers(self):
        pass


def build_replica(reply_cache_limit=10):
    transport = RecordingTransport()
    replica = MultiBFTReplica(
        replica_id=0,
        num_replicas=4,
        core=build_core("orthrus", CoreConfig(num_instances=1)),
        transport=transport,
        reply_cache_limit=reply_cache_limit,
    )
    return replica, transport


def reply(tx_id, committed=True):
    return ClientReply(tx_id=tx_id, replica=0, committed=committed, confirmed_at=1.0)


class TestEvictionOrder:
    def test_cache_holds_everything_up_to_the_cap(self):
        replica, _ = build_replica(reply_cache_limit=10)
        for index in range(10):
            replica._cache_reply(reply(f"tx-{index}"))
        assert len(replica._reply_of_tx) == 10

    def test_crossing_the_cap_evicts_exactly_the_oldest_half(self):
        replica, _ = build_replica(reply_cache_limit=10)
        for index in range(11):
            replica._cache_reply(reply(f"tx-{index}"))
        kept = list(replica._reply_of_tx)
        assert kept == [f"tx-{index}" for index in range(5, 11)]

    def test_retransmit_hits_do_not_promote_entries(self):
        # A cache hit answers from the dict without reinserting; the entry
        # keeps its insertion-order position and is still evicted first.
        replica, transport = build_replica(reply_cache_limit=10)
        for index in range(10):
            replica._cache_reply(reply(f"tx-{index}"))
        # Retransmission of the oldest entry: answered from the cache.
        oldest = simple_transfer("a", "b", 1, tx_id="tx-0")
        replica.receive(99, ClientRequest(tx=oldest, client_node=99))
        assert transport.sent[-1][0] == 99
        assert transport.sent[-1][1].tx_id == "tx-0"
        # Crossing the cap still evicts tx-0 with the oldest half.
        replica._cache_reply(reply("tx-10"))
        assert "tx-0" not in replica._reply_of_tx
        assert "tx-10" in replica._reply_of_tx

    def test_overwrite_keeps_original_position(self):
        replica, _ = build_replica(reply_cache_limit=10)
        for index in range(9):
            replica._cache_reply(reply(f"tx-{index}"))
        replica._cache_reply(reply("tx-0", committed=False))  # re-cache
        replica._cache_reply(reply("tx-9"))
        replica._cache_reply(reply("tx-10"))  # crosses the cap
        assert "tx-0" not in replica._reply_of_tx  # still oldest, still evicted


class TestEvictedEntryFailSafe:
    def test_retransmission_for_evicted_committed_tx_is_answered(self):
        replica, transport = build_replica()
        tx = simple_transfer("alice", "bob", 1, tx_id="evicted")
        replica.core._set_status(tx, TxStatus.COMMITTED)
        # Nothing cached (simulates eviction): must rebuild from status.
        assert "evicted" not in replica._reply_of_tx
        replica.receive(99, ClientRequest(tx=tx, client_node=99))
        destination, message = transport.sent[-1]
        assert destination == 99
        assert message.tx_id == "evicted"
        assert message.committed is True
        # And the rebuilt reply is cached for the next retransmission.
        assert "evicted" in replica._reply_of_tx

    def test_retransmission_for_evicted_rejected_tx_reports_rejection(self):
        replica, transport = build_replica()
        tx = simple_transfer("alice", "bob", 1, tx_id="rejected")
        replica.core._set_status(tx, TxStatus.REJECTED)
        replica.receive(99, ClientRequest(tx=tx, client_node=99))
        _, message = transport.sent[-1]
        assert message.committed is False

    def test_no_double_execution_from_retransmission(self):
        replica, transport = build_replica()
        tx = simple_transfer("alice", "bob", 1, tx_id="dup")
        replica.core._set_status(tx, TxStatus.COMMITTED)
        before = replica.core.submitted_count
        replica.receive(99, ClientRequest(tx=tx, client_node=99))
        assert replica.core.submitted_count == before  # never re-submitted

    def test_unexecuted_tx_still_goes_through_submission(self):
        replica, transport = build_replica()
        tx = simple_transfer("alice", "bob", 1, tx_id="fresh")
        replica.receive(99, ClientRequest(tx=tx, client_node=99))
        assert transport.sent == []  # no premature reply
        assert replica.core.submitted_count == 1
