"""AsyncioTransport encode accounting and wire-version negotiation.

The transport must not pay for serialisation when nothing will be sent
(closed transport, filtered message, unknown destination, empty broadcast),
must encode a broadcast once per negotiated version rather than once per
peer, and must pick ``min(own, advertised)`` per destination.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.codec import WIRE_VERSION, WIRE_VERSION_BINARY, decode_envelope
from repro.runtime.control import StatusRequest
from repro.runtime.transport import AsyncioTransport
from repro.sb.pbft.messages import Prepare


PEERS = {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2), 2: ("127.0.0.1", 3), 3: ("127.0.0.1", 4)}


def run(coro):
    return asyncio.run(coro)


async def _make_transport(**kwargs) -> AsyncioTransport:
    return AsyncioTransport(0, dict(PEERS), **kwargs)


def _message() -> Prepare:
    return Prepare(instance=0, view=0, sender=0, sequence_number=1, digest="ab")


class TestEncodeCounting:
    def test_broadcast_encodes_once_for_uniform_versions(self):
        async def scenario():
            transport = await _make_transport()
            for peer in (1, 2, 3):
                transport.note_peer_version(peer, WIRE_VERSION_BINARY)
            transport.broadcast(_message())
            assert transport.frames_encoded == 1
            # Three per-peer queues were still filled from the one encoding.
            assert sum(q.qsize() for q in transport._queues.values()) == 3
            await transport.close()

        run(scenario())

    def test_broadcast_encodes_once_per_distinct_version(self):
        async def scenario():
            transport = await _make_transport()
            transport.note_peer_version(1, WIRE_VERSION_BINARY)
            transport.note_peer_version(2, WIRE_VERSION)
            # Peer 3 has not said hello: conservative JSON, shared with peer 2.
            transport.broadcast(_message())
            assert transport.frames_encoded == 2
            await transport.close()

        run(scenario())

    def test_closed_transport_does_not_encode(self):
        async def scenario():
            transport = await _make_transport()
            await transport.close()
            transport.send(1, _message())
            transport.broadcast(_message())
            assert transport.frames_encoded == 0

        run(scenario())

    def test_filtered_message_does_not_encode(self):
        async def scenario():
            transport = await _make_transport()
            transport.outbound_filter = lambda message: False
            transport.send(1, _message())
            transport.broadcast(_message())
            assert transport.frames_encoded == 0
            assert transport.frames_filtered == 2
            await transport.close()

        run(scenario())

    def test_unknown_destination_does_not_encode(self):
        async def scenario():
            transport = await _make_transport()
            transport.send(99, _message())
            assert transport.frames_encoded == 0
            assert transport.frames_dropped == 1
            await transport.close()

        run(scenario())

    def test_empty_broadcast_does_not_encode(self):
        async def scenario():
            transport = AsyncioTransport(0, {0: ("127.0.0.1", 1)})
            transport.broadcast(_message())  # only peer is self
            assert transport.frames_encoded == 0
            await transport.close()

        run(scenario())


class TestVersionNegotiation:
    def test_defaults_to_json_until_hello_arrives(self):
        async def scenario():
            transport = await _make_transport()
            assert transport.version_for(1) == WIRE_VERSION
            transport.note_peer_version(1, WIRE_VERSION_BINARY)
            assert transport.version_for(1) == WIRE_VERSION_BINARY
            await transport.close()

        run(scenario())

    def test_never_exceeds_own_version(self):
        async def scenario():
            transport = await _make_transport(wire_version=WIRE_VERSION)
            transport.note_peer_version(1, WIRE_VERSION_BINARY)
            assert transport.version_for(1) == WIRE_VERSION
            await transport.close()

        run(scenario())

    def test_clamps_down_for_v1_peer(self):
        async def scenario():
            transport = await _make_transport(wire_version=WIRE_VERSION_BINARY)
            transport.note_peer_version(1, 1)
            transport.note_peer_version(2, 2)
            transport.send(1, StatusRequest(nonce=1))
            transport.send(2, StatusRequest(nonce=2))
            frame_v1 = transport._queues[1].get_nowait()[1]
            frame_v2 = transport._queues[2].get_nowait()[1]
            assert frame_v1[0:1] == b"{"
            assert frame_v2[0] == 0xB2
            # Both decode to the same request regardless of version.
            assert decode_envelope(frame_v1)[1].nonce == 1
            assert decode_envelope(frame_v2)[1].nonce == 2
            await transport.close()

        run(scenario())

    def test_rejects_unknown_wire_version(self):
        async def scenario():
            with pytest.raises(ValueError, match="unsupported wire version"):
                await _make_transport(wire_version=9)

        run(scenario())
