"""Scale-path units of :mod:`repro.runtime.cluster` and UDS integration.

Batch port reservation, endpoint selection for both transports, event-driven
exit supervision, and an in-process cluster over Unix domain sockets — the
pieces the 100-replica benchmark leans on, tested at unit scale.
"""

from __future__ import annotations

import asyncio
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.ledger.transactions import reset_transaction_counter
from repro.runtime.client import ClientConfig, OrthrusClient
from repro.runtime.cluster import ClusterSpec, LocalCluster, reserve_free_ports
from repro.runtime.config import ReplicaRuntimeConfig, is_uds_endpoint
from repro.runtime.server import ReplicaServer
from repro.workload.config import WorkloadConfig


class TestReserveFreePorts:
    def test_ports_are_distinct_and_held(self):
        sockets = reserve_free_ports(20)
        try:
            ports = [probe.getsockname()[1] for probe in sockets]
            assert len(set(ports)) == 20
            # Held reservations really occupy the port: a plain bind fails.
            with socket.socket() as clash:
                with pytest.raises(OSError):
                    clash.bind(("127.0.0.1", ports[0]))
        finally:
            for probe in sockets:
                probe.close()

    def test_zero_ports(self):
        assert reserve_free_ports(0) == []


class TestClusterSpecValidation:
    def test_rejects_unknown_transport(self):
        with pytest.raises(ExperimentError, match="transport"):
            ClusterSpec(num_replicas=4, transport="carrier-pigeon")

    def test_rejects_negative_workers(self):
        with pytest.raises(ExperimentError, match="workers"):
            ClusterSpec(num_replicas=4, workers=-1)

    def test_uds_spec_is_valid(self):
        spec = ClusterSpec(num_replicas=4, transport="uds", workers=2)
        assert spec.transport == "uds"
        assert spec.workers == 2


class TestEndpointSelection:
    def test_uds_endpoints_live_in_one_private_directory(self):
        cluster = LocalCluster(ClusterSpec(num_replicas=6, transport="uds"))
        try:
            assert len(cluster.endpoints) == 6
            assert all(is_uds_endpoint(e) for e in cluster.endpoints)
            paths = [Path(host[len("unix:") :]) for host, _ in cluster.endpoints]
            assert len({p.parent for p in paths}) == 1
            assert len(set(paths)) == 6
        finally:
            cluster.stop()

    def test_stop_removes_the_socket_directory(self):
        cluster = LocalCluster(ClusterSpec(num_replicas=4, transport="uds"))
        directory = Path(cluster.endpoints[0][0][len("unix:") :]).parent
        assert directory.is_dir()
        cluster.stop()
        assert not directory.exists()

    def test_tcp_endpoints_are_batch_reserved_and_distinct(self):
        cluster = LocalCluster(ClusterSpec(num_replicas=8))
        try:
            ports = [port for _, port in cluster.endpoints]
            assert len(set(ports)) == 8
            assert all(port > 0 for port in ports)
        finally:
            cluster.stop()

    def test_serve_command_carries_workers_and_uds_peers(self):
        cluster = LocalCluster(
            ClusterSpec(num_replicas=4, transport="uds", workers=2)
        )
        try:
            command = cluster.serve_command(0)
            assert "--workers" in command
            assert command[command.index("--workers") + 1] == "2"
            peers = command[command.index("--peers") + 1]
            assert peers.count("unix:") == 4
        finally:
            cluster.stop()

    def test_serve_command_omits_workers_when_inline(self):
        cluster = LocalCluster(ClusterSpec(num_replicas=4))
        try:
            assert "--workers" not in cluster.serve_command(0)
        finally:
            cluster.stop()


class TestExitSupervision:
    def _cluster_with_fake_children(self, commands):
        cluster = LocalCluster(ClusterSpec(num_replicas=4))
        for replica_id, argv in enumerate(commands):
            process = subprocess.Popen(
                argv, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
            )
            cluster.processes.append(process)
            cluster._watch(replica_id, process)
        return cluster

    def test_wait_for_exit_wakes_on_a_death(self):
        sleep_long = [sys.executable, "-c", "import time; time.sleep(30)"]
        exit_now = [sys.executable, "-c", "raise SystemExit(1)"]
        cluster = self._cluster_with_fake_children(
            [sleep_long, exit_now, sleep_long, sleep_long]
        )
        try:
            assert cluster.wait_for_exit(timeout=10.0) == [1]
        finally:
            cluster.stop()

    def test_check_is_empty_while_all_children_live(self):
        sleep_long = [sys.executable, "-c", "import time; time.sleep(30)"]
        cluster = self._cluster_with_fake_children([sleep_long] * 4)
        try:
            assert cluster.check() == []
        finally:
            cluster.stop()

    def test_stop_clears_exit_state(self):
        exit_now = [sys.executable, "-c", "raise SystemExit(0)"]
        cluster = self._cluster_with_fake_children([exit_now] * 4)
        cluster.wait_for_exit(timeout=10.0)
        cluster.stop()
        assert cluster.check() == []
        assert cluster.processes == []


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


def test_in_process_cluster_over_unix_domain_sockets():
    """Four replicas on UDS endpoints: commits, agreement, super-frames."""
    workload = WorkloadConfig(num_accounts=128, seed=5)

    async def scenario(socket_dir: str):
        peers = tuple(
            (f"unix:{socket_dir}/replica-{i}.sock", 0) for i in range(4)
        )
        servers = []
        for replica_id in range(4):
            server = ReplicaServer(
                ReplicaRuntimeConfig(
                    replica_id=replica_id,
                    peers=peers,
                    num_instances=2,
                    batch_size=32,
                    batch_interval=0.02,
                    workload=workload,
                )
            )
            await server.start()
            servers.append(server)
        try:
            from repro.workload.generator import EthereumStyleWorkload

            generator = EthereumStyleWorkload(workload)
            async with OrthrusClient(
                list(peers), ClientConfig(timeout=5.0)
            ) as client:
                futures = [
                    client.submit_nowait(generator.next_transaction())
                    for _ in range(40)
                ]
                results = await asyncio.gather(*futures)
                assert all(result.committed for result in results)
                for _ in range(50):
                    statuses = await client.cluster_status()
                    if len({s.state_digest for s in statuses}) == 1 and all(
                        s.committed >= 40 for s in statuses
                    ):
                        break
                    await asyncio.sleep(0.1)
                assert len({s.state_digest for s in statuses}) == 1
            # The default wire version is v3 on both sides, so the burst of
            # 40 requests and the batched replies must have coalesced.
            assert sum(s.transport.super_frames_sent for s in servers) > 0
        finally:
            for server in servers:
                server.stop()
                await server._shutdown()

    with tempfile.TemporaryDirectory(prefix="repro-uds-test-") as socket_dir:
        asyncio.run(scenario(socket_dir))
