"""Transport-level super-frame batching and interop with pinned peers.

A v3↔v3 connection coalesces bursts into super-frames; a v3 node talking to
a pinned v1 or v2 peer must keep sending plain sequential frames.  Straggler
injection (``send_delay``) must survive coalescing: a frame is never written
before its own due time, even when the writer batches around it.
"""

from __future__ import annotations

import asyncio

from repro.runtime.codec import (
    WIRE_VERSION,
    WIRE_VERSION_BATCH,
    WIRE_VERSION_BINARY,
    decode_envelopes,
)
from repro.runtime.control import Hello, StatusRequest
from repro.runtime.framing import FrameError, FrameReader, is_super_frame
from repro.runtime.transport import AsyncioTransport


def run(coro):
    return asyncio.run(coro)


class _Collector:
    """TCP server recording (arrival_time, payload) for every frame."""

    def __init__(self) -> None:
        self.received: list[tuple[float, bytes]] = []
        self.server: asyncio.Server | None = None
        self.port: int = 0
        self._got_frame = asyncio.Event()

    async def start(self) -> None:
        async def handle(reader, writer):
            frames = FrameReader(reader)
            loop = asyncio.get_running_loop()
            while True:
                try:
                    batch = await frames.read_batch()
                except FrameError:
                    break
                if batch is None:
                    break
                now = loop.time()
                for payload in batch:
                    self.received.append((now, payload))
                self._got_frame.set()

        self.server = await asyncio.start_server(handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def wait_for(self, count: int, timeout: float = 5.0) -> None:
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.received) < count:
            remaining = deadline - asyncio.get_running_loop().time()
            assert remaining > 0, (
                f"timed out with {len(self.received)}/{count} frames"
            )
            self._got_frame.clear()
            try:
                await asyncio.wait_for(self._got_frame.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    async def close(self) -> None:
        assert self.server is not None
        self.server.close()
        await self.server.wait_closed()

    def payloads(self) -> list[bytes]:
        return [payload for _, payload in self.received]

    def messages(self) -> list[tuple[float, int, object]]:
        """Flatten every frame (splitting super-frames) into messages."""
        out = []
        for arrival, payload in self.received:
            for sender, message in decode_envelopes(payload):
                out.append((arrival, sender, message))
        return out


async def _transport_to(
    collector: _Collector, *, peer_version: int, **kwargs
) -> AsyncioTransport:
    transport = AsyncioTransport(
        0, {0: ("127.0.0.1", 1), 1: ("127.0.0.1", collector.port)}, **kwargs
    )
    transport.note_peer_version(1, peer_version)
    return transport


class TestSuperFrameCoalescing:
    def test_burst_to_v3_peer_arrives_as_one_super_frame(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = await _transport_to(
                collector, peer_version=WIRE_VERSION_BATCH
            )
            for nonce in range(10):
                transport.send(1, StatusRequest(nonce=nonce))
            # hello + the batch (all 10 were queued before the dial finished)
            await collector.wait_for(2)
            await transport.close()
            await collector.close()

            payloads = collector.payloads()
            supers = [p for p in payloads if is_super_frame(p)]
            assert len(supers) == 1
            assert transport.super_frames_sent == 1
            nonces = [
                message.nonce
                for _, _, message in collector.messages()
                if isinstance(message, StatusRequest)
            ]
            assert nonces == list(range(10))

        run(scenario())

    def test_pinned_v2_peer_never_sees_super_frames(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = await _transport_to(
                collector, peer_version=WIRE_VERSION_BINARY
            )
            for nonce in range(10):
                transport.send(1, StatusRequest(nonce=nonce))
            await collector.wait_for(11)  # hello + 10 individual frames
            await transport.close()
            await collector.close()

            assert transport.super_frames_sent == 0
            assert not any(is_super_frame(p) for p in collector.payloads())
            # The 10 requests still all arrive, as plain v2 envelopes.
            v2 = [p for p in collector.payloads() if p and p[0] == 0xB2]
            assert len(v2) == 10

        run(scenario())

    def test_pinned_v1_peer_gets_sequential_json_frames(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = await _transport_to(collector, peer_version=WIRE_VERSION)
            for nonce in range(5):
                transport.send(1, StatusRequest(nonce=nonce))
            await collector.wait_for(6)  # hello + 5
            await transport.close()
            await collector.close()

            assert transport.super_frames_sent == 0
            assert all(p[0:1] == b"{" for p in collector.payloads())

        run(scenario())

    def test_hello_itself_is_always_plain_v1(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = await _transport_to(
                collector, peer_version=WIRE_VERSION_BATCH
            )
            transport.send(1, StatusRequest(nonce=1))
            await collector.wait_for(2)
            await transport.close()
            await collector.close()

            first = collector.payloads()[0]
            assert first[0:1] == b"{"
            [(_, hello)] = decode_envelopes(first)
            assert isinstance(hello, Hello)
            assert hello.wire_version == WIRE_VERSION_BATCH

        run(scenario())


class TestSendDelayDueTimes:
    def test_coalescing_never_writes_a_frame_before_its_due_time(self):
        """Two frames with staggered due times under send_delay: the first
        must not wait for the second, and the second must not ride the first
        frame's flush early."""

        async def scenario():
            delay = 0.25
            collector = _Collector()
            await collector.start()
            transport = await _transport_to(
                collector, peer_version=WIRE_VERSION_BATCH, send_delay=delay
            )
            loop = asyncio.get_running_loop()
            queued_first = loop.time()
            transport.send(1, StatusRequest(nonce=1))
            await asyncio.sleep(0.1)
            queued_second = loop.time()
            transport.send(1, StatusRequest(nonce=2))
            await collector.wait_for(3)  # hello + two delayed frames
            await transport.close()
            await collector.close()

            arrivals = {
                message.nonce: arrival
                for arrival, _, message in collector.messages()
                if isinstance(message, StatusRequest)
            }
            assert set(arrivals) == {1, 2}
            assert arrivals[1] >= queued_first + delay - 0.01
            assert arrivals[2] >= queued_second + delay - 0.01
            # Pipelined, not serialised: the second frame's extra wait is its
            # own queue offset, not first-delay + second-delay.
            assert arrivals[2] < queued_second + 2 * delay

        run(scenario())

    def test_frames_due_together_still_coalesce_under_delay(self):
        async def scenario():
            delay = 0.15
            collector = _Collector()
            await collector.start()
            transport = await _transport_to(
                collector, peer_version=WIRE_VERSION_BATCH, send_delay=delay
            )
            queued = asyncio.get_running_loop().time()
            for nonce in range(6):
                transport.send(1, StatusRequest(nonce=nonce))
            await collector.wait_for(2)  # hello + one super-frame
            await transport.close()
            await collector.close()

            supers = [p for p in collector.payloads() if is_super_frame(p)]
            assert len(supers) == 1
            for arrival, _, message in collector.messages():
                if isinstance(message, StatusRequest):
                    assert arrival >= queued + delay - 0.01

        run(scenario())


class TestBatchNegotiation:
    def test_version_for_min_rule_covers_v3(self):
        async def scenario():
            transport = AsyncioTransport(
                0, {1: ("127.0.0.1", 1)}, wire_version=WIRE_VERSION_BATCH
            )
            assert transport.version_for(1) == WIRE_VERSION  # no hello yet
            for advertised, expected in ((1, 1), (2, 2), (3, 3), (9, 3)):
                transport.note_peer_version(1, advertised)
                assert transport.version_for(1) == expected
            await transport.close()

        run(scenario())

    def test_v2_node_clamps_a_v3_peer_down(self):
        async def scenario():
            transport = AsyncioTransport(
                0, {1: ("127.0.0.1", 1)}, wire_version=WIRE_VERSION_BINARY
            )
            transport.note_peer_version(1, WIRE_VERSION_BATCH)
            assert transport.version_for(1) == WIRE_VERSION_BINARY
            await transport.close()

        run(scenario())
