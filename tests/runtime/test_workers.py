"""Worker-pool offload must be behaviour-identical to the inline path.

The pool is an optimisation: every batch function produces the same results
whether it runs on the event loop (``InlineWorkers``) or in a worker process
(``WorkerPool``).  These tests pin that equivalence, the per-item error
capture, and the digest pre-warming that makes pool decodes pay off.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.messages import ClientRequest
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import sign
from repro.ledger.blocks import Block, SystemState
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.transactions import Transaction, TransactionType
from repro.runtime.codec import WireCodecError, encode_envelope
from repro.runtime.control import StatusRequest
from repro.runtime.framing import encode_super_frame
from repro.runtime.workers import (
    InlineWorkers,
    WorkerPool,
    decode_payloads,
    digest_batch,
    encode_envelopes,
    make_worker_pool,
    verify_batch,
)
from repro.sb.pbft.messages import PrePrepare, Prepare


def run(coro):
    return asyncio.run(coro)


def _transactions(count: int) -> list[Transaction]:
    return [
        Transaction(
            tx_id=f"tx-{i}",
            operations=(
                ObjectOperation(
                    key=f"acct-{i % 7}",
                    kind=OperationKind.INCREMENT,
                    amount=1,
                    object_type=ObjectType.OWNED,
                ),
            ),
            tx_type=TransactionType.PAYMENT,
            client_id="w",
        )
        for i in range(count)
    ]


def _block(txs) -> Block:
    return Block.create(
        instance=0,
        sequence_number=1,
        transactions=txs,
        state=SystemState.initial(2),
        proposer=0,
        rank=3,
    )


def _messages():
    txs = _transactions(8)
    block = _block(txs)
    return [
        Prepare(instance=0, view=0, sender=1, sequence_number=1, digest=block.digest),
        ClientRequest(tx=txs[0], client_node=1000),
        PrePrepare(
            instance=0,
            view=0,
            sender=0,
            sequence_number=1,
            block=block,
            digest=block.digest,
        ),
        StatusRequest(nonce=9),
    ]


def _payloads(version: int = 2) -> list[bytes]:
    return [
        encode_envelope(sender, message, version=version)
        for sender, message in enumerate(_messages())
    ]


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool(1)
    yield pool
    pool.close()


class TestPoolMatchesInline:
    def test_decode(self, pool):
        payloads = _payloads() + [encode_super_frame(_payloads(version=1))]

        async def scenario():
            return await pool.decode(payloads), await InlineWorkers().decode(payloads)

        pooled, inline = run(scenario())
        assert len(pooled) == len(inline) == 8
        for (p_sender, p_message), (i_sender, i_message) in zip(pooled, inline):
            assert p_sender == i_sender
            assert type(p_message) is type(i_message)
            assert encode_envelope(0, p_message) == encode_envelope(0, i_message)

    def test_encode(self, pool):
        jobs = [
            (sender, message, version)
            for version in (1, 2)
            for sender, message in enumerate(_messages())
        ]

        async def scenario():
            return await pool.encode(jobs), await InlineWorkers().encode(jobs)

        pooled, inline = run(scenario())
        assert pooled == inline == encode_envelopes(jobs)

    def test_digests(self, pool):
        values = [{"a": 1}, [1, 2, 3], "x", 7]

        async def scenario():
            return await pool.digests(values), await InlineWorkers().digests(values)

        pooled, inline = run(scenario())
        assert pooled == inline == digest_batch(values)

    def test_verify(self, pool):
        pki = PublicKeyInfrastructure()
        keypair = pki.enroll("replica-1")
        pairs = [
            (sign(keypair, {"vote": 1}), {"vote": 1}),
            (sign(keypair, {"vote": 1}), {"vote": 2}),
        ]

        async def scenario():
            return (
                await pool.verify(pki, pairs),
                await InlineWorkers().verify(pki, pairs),
            )

        pooled, inline = run(scenario())
        assert pooled == inline == verify_batch(pki, pairs) == [True, False]


class TestDecodeSemantics:
    def test_corrupt_entry_does_not_poison_the_batch(self):
        payloads = [_payloads()[0], b"\xb2garbage", _payloads()[1]]
        out = decode_payloads(payloads)
        assert len(out) == 3
        assert isinstance(out[0], tuple)
        assert isinstance(out[1], WireCodecError)
        assert isinstance(out[2], tuple)

    def test_corrupt_super_frame_is_one_error_entry(self):
        out = decode_payloads([b"\xb3\x00\x00\x00\x05short"])
        assert len(out) == 1
        assert isinstance(out[0], WireCodecError)

    def test_pool_decode_warms_block_digest_memos(self, pool):
        payloads = _payloads()

        async def scenario():
            return await pool.decode(payloads)

        decoded = run(scenario())
        blocks = [
            message.block
            for _, message in decoded
            if isinstance(message, PrePrepare) and message.block is not None
        ]
        assert blocks
        # The memo was computed worker-side and travelled with the pickle.
        assert all(block._digest_memo is not None for block in blocks)

    def test_inline_decode_does_not_prepay_digests(self):
        decoded = decode_payloads(_payloads())
        blocks = [
            message.block
            for _, message in decoded
            if isinstance(message, PrePrepare) and message.block is not None
        ]
        assert blocks
        assert all(block._digest_memo is None for block in blocks)


class TestFactory:
    def test_zero_workers_is_inline(self):
        workers = make_worker_pool(0)
        assert isinstance(workers, InlineWorkers)
        assert workers.workers == 0

    def test_positive_workers_is_a_pool(self):
        workers = make_worker_pool(1)
        try:
            assert isinstance(workers, WorkerPool)
            assert workers.workers == 1
        finally:
            workers.close()

    def test_pool_rejects_zero(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_pool_counts_batches_and_items(self, pool):
        before_batches = pool.batches_submitted
        before_items = pool.items_submitted

        async def scenario():
            await pool.digests([1, 2, 3])

        run(scenario())
        assert pool.batches_submitted == before_batches + 1
        assert pool.items_submitted == before_items + 3
