"""In-process integration tests for the live runtime.

Four :class:`ReplicaServer` instances share one event loop and real localhost
TCP sockets — the same code paths as separate OS processes, minus the
process boundary, which keeps these tests fast and debuggable.  The
process-level path is exercised by ``benchmarks/test_live_smoke.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.ledger.transactions import reset_transaction_counter
from repro.runtime.client import ClientConfig, OrthrusClient
from repro.runtime.cluster import free_port
from repro.runtime.config import ReplicaRuntimeConfig
from repro.runtime.loadgen import LoadGenConfig, LoadGenerator
from repro.runtime.server import ReplicaServer
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

NUM_REPLICAS = 4
WORKLOAD = WorkloadConfig(num_accounts=128, seed=5)


async def start_cluster(num_instances: int = 2) -> tuple[list[ReplicaServer], tuple]:
    peers = tuple(("127.0.0.1", free_port()) for _ in range(NUM_REPLICAS))
    servers = []
    for replica_id in range(NUM_REPLICAS):
        server = ReplicaServer(
            ReplicaRuntimeConfig(
                replica_id=replica_id,
                peers=peers,
                num_instances=num_instances,
                batch_size=32,
                batch_interval=0.02,
                workload=WORKLOAD,
            )
        )
        await server.start()
        servers.append(server)
    return servers, peers


async def stop_cluster(servers: list[ReplicaServer]) -> None:
    for server in servers:
        server.stop()
        await server._shutdown()


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


def test_client_submissions_reach_quorum_and_replicas_agree():
    async def scenario():
        servers, peers = await start_cluster()
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(list(peers), ClientConfig(timeout=3.0)) as client:
                futures = [
                    client.submit_nowait(workload.next_transaction())
                    for _ in range(60)
                ]
                results = await asyncio.gather(*futures)
                assert all(result.committed for result in results)
                # f + 1 = 2 matching replies for n = 4.
                assert all(len(result.replicas) >= 2 for result in results)
                assert client.pending_count == 0

                # After settling, every replica holds the same state.
                for _ in range(50):
                    statuses = await client.cluster_status()
                    if len({s.state_digest for s in statuses}) == 1 and all(
                        s.committed >= 60 for s in statuses
                    ):
                        break
                    await asyncio.sleep(0.1)
                assert len({s.state_digest for s in statuses}) == 1
                assert all(s.committed >= 60 for s in statuses)
        finally:
            await stop_cluster(servers)

    asyncio.run(scenario())


def test_closed_loop_loadgen_reports_metrics():
    async def scenario():
        servers, peers = await start_cluster()
        try:
            generator = LoadGenerator(
                list(peers),
                LoadGenConfig(
                    transactions=80,
                    mode="closed",
                    concurrency=8,
                    workload=WorkloadConfig(
                        num_accounts=128, seed=5, payment_fraction=1.0
                    ),
                    client=ClientConfig(timeout=3.0),
                ),
            )
            report = await generator.run()
            assert report.completed == 80
            assert report.failed == 0
            assert report.metrics.committed == 80
            assert report.metrics.throughput_tps > 0
            assert report.digests_agree
            # The five-stage breakdown spans client and replica clocks.
            assert report.stage_breakdown["partial_ordering"] > 0
            assert report.stage_breakdown["reply"] > 0
        finally:
            await stop_cluster(servers)

    asyncio.run(scenario())


def test_open_loop_loadgen():
    async def scenario():
        servers, peers = await start_cluster()
        try:
            generator = LoadGenerator(
                list(peers),
                LoadGenConfig(
                    transactions=40,
                    mode="open",
                    rate_tps=200.0,
                    workload=WorkloadConfig(
                        num_accounts=128, seed=5, payment_fraction=1.0
                    ),
                    client=ClientConfig(timeout=3.0),
                ),
            )
            report = await generator.run()
            assert report.completed == 40
            # Open loop paces submissions: 40 tx at 200 tps is >= 0.2 s.
            assert report.wall_seconds >= 0.15
        finally:
            await stop_cluster(servers)

    asyncio.run(scenario())


def test_client_retransmits_after_timeout():
    """A request lost before reaching any replica is retried and completes."""

    async def scenario():
        servers, peers = await start_cluster()
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            client = OrthrusClient(
                list(peers), ClientConfig(timeout=0.3, retries=3)
            )
            await client.connect()
            try:
                tx = workload.next_transaction()
                original_transmit = client._transmit
                calls = {"n": 0}

                def flaky_transmit(tx, **kwargs):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        return  # swallow the first attempt entirely
                    original_transmit(tx, **kwargs)

                client._transmit = flaky_transmit
                result = await client.submit(tx)
                assert result.committed
                assert result.retries >= 1
                assert client.retransmissions >= 1
            finally:
                await client.close()
        finally:
            await stop_cluster(servers)

    asyncio.run(scenario())


def test_retransmitted_request_is_answered_from_reply_cache():
    """A duplicate request for an executed tx gets a reply, not re-execution."""

    async def scenario():
        servers, peers = await start_cluster()
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(list(peers), ClientConfig(timeout=3.0)) as client:
                tx = workload.next_transaction()
                first = await client.submit(tx)
                assert first.committed
                # Let every replica finish executing before re-submitting.
                await asyncio.sleep(0.3)
                committed_before = [s.committed for s in await client.cluster_status()]

                second = await client.submit(tx)
                assert second.committed == first.committed

                committed_after = [s.committed for s in await client.cluster_status()]
                assert committed_after == committed_before  # no double execution
        finally:
            await stop_cluster(servers)

    asyncio.run(scenario())


def test_shutdown_request_stops_server():
    async def scenario():
        servers, peers = await start_cluster()
        try:
            async with OrthrusClient(list(peers)) as client:
                await client.shutdown_cluster("test shutdown")
            await asyncio.wait_for(
                asyncio.gather(*(s._stopped.wait() for s in servers)), timeout=5.0
            )
        finally:
            await stop_cluster(servers)

    asyncio.run(scenario())
