"""Leader-routed submission: target selection units + an end-to-end check.

With ``ClientConfig.route_instances`` set, first transmissions go to the
view-0 leaders of a transaction's payer buckets, topped up to ``f + 1``
replicas — the smallest set that can still produce a matching reply quorum.
Retransmissions always broadcast, which is what keeps routed submissions
live across crashed or demoted leaders.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.partition import PayerPartitioner
from repro.ledger.transactions import reset_transaction_counter
from repro.runtime.client import ClientConfig, OrthrusClient
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

NUM_REPLICAS = 4
WORKLOAD = WorkloadConfig(num_accounts=128, seed=5)
PEERS = tuple(("127.0.0.1", 9000 + i) for i in range(NUM_REPLICAS))


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


class _StubWriter:
    def is_closing(self) -> bool:
        return False


def routed_client(instances: int = 2) -> OrthrusClient:
    client = OrthrusClient(
        list(PEERS), ClientConfig(route_instances=instances)
    )
    client._writers = {i: _StubWriter() for i in range(NUM_REPLICAS)}
    return client


def expected_targets(tx, instances: int = 2) -> set[int]:
    leaders = {
        bucket % NUM_REPLICAS
        for bucket in PayerPartitioner(instances).buckets_for(tx)
    }
    cursor = (min(leaders) + 1) % NUM_REPLICAS
    while len(leaders) < 2:  # f + 1 for n = 4
        leaders.add(cursor)
        cursor = (cursor + 1) % NUM_REPLICAS
    return leaders


class TestRouteTargets:
    def test_routes_to_bucket_leaders_topped_up_to_a_quorum(self):
        client = routed_client()
        generator = EthereumStyleWorkload(WORKLOAD)
        for _ in range(50):
            tx = generator.next_transaction()
            targets = client._route_targets(tx)
            assert targets is not None
            picked = {replica_id for replica_id, _ in targets}
            assert picked == expected_targets(tx)
            assert len(picked) >= client.reply_quorum

    def test_falls_back_when_a_routed_leader_is_disconnected(self):
        client = routed_client()
        generator = EthereumStyleWorkload(WORKLOAD)
        tx = generator.next_transaction()
        victim = min(expected_targets(tx))
        del client._writers[victim]
        assert client._route_targets(tx) is None

    def test_routing_is_off_by_default(self):
        client = OrthrusClient(list(PEERS), ClientConfig())
        assert client._partitioner is None


class TestTransmitTargeting:
    def _recording_client(self):
        client = routed_client()
        sent: list[int] = []
        client._queue_frame = lambda replica_id, frame: sent.append(replica_id)
        return client, sent

    def test_first_transmit_is_routed(self):
        client, sent = self._recording_client()
        tx = EthereumStyleWorkload(WORKLOAD).next_transaction()
        client._transmit(tx)
        assert set(sent) == expected_targets(tx)

    def test_retransmit_broadcasts_to_every_replica(self):
        client, sent = self._recording_client()
        tx = EthereumStyleWorkload(WORKLOAD).next_transaction()
        client._transmit(tx, broadcast=True)
        assert set(sent) == set(range(NUM_REPLICAS))


def test_routed_cluster_commits_with_replies_from_routed_replicas():
    """End to end: routed submissions reach quorum; replies come only from
    the targeted replicas (the others never saw the request directly)."""
    from repro.runtime.config import ReplicaRuntimeConfig
    from repro.runtime.server import ReplicaServer
    from repro.runtime.cluster import free_port

    async def scenario():
        peers = tuple(("127.0.0.1", free_port()) for _ in range(NUM_REPLICAS))
        servers = []
        for replica_id in range(NUM_REPLICAS):
            server = ReplicaServer(
                ReplicaRuntimeConfig(
                    replica_id=replica_id,
                    peers=peers,
                    num_instances=2,
                    batch_size=32,
                    batch_interval=0.02,
                    workload=WORKLOAD,
                )
            )
            await server.start()
            servers.append(server)
        try:
            generator = EthereumStyleWorkload(WORKLOAD)
            async with OrthrusClient(
                list(peers), ClientConfig(timeout=5.0, route_instances=2)
            ) as client:
                txs = [generator.next_transaction() for _ in range(40)]
                results = await asyncio.gather(
                    *[client.submit_nowait(tx) for tx in txs]
                )
                assert all(result.committed for result in results)
                assert client.retransmissions == 0
                for tx, result in zip(txs, results):
                    assert set(result.replicas) <= expected_targets(tx)
        finally:
            for server in servers:
                server.stop()
                await server._shutdown()

    asyncio.run(scenario())
