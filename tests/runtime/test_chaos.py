"""Fault-injection units plus in-process live degradation scenarios.

The scenario tests run four :class:`ReplicaServer` instances on one event
loop over real localhost TCP — the same code paths as separate OS processes
(that path is exercised by ``benchmarks/test_live_chaos_smoke.py``) — and
drive the paper's three degradation modes against them: a crashed leader
(view change must fire and the cluster must keep committing), a straggler,
and an undetectably abstaining Byzantine replica.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster.faults import FaultPlan
from repro.errors import ConfigurationError
from repro.ledger.transactions import reset_transaction_counter
from repro.runtime.chaos import (
    STRAGGLER_UNIT_DELAY,
    ChaosController,
    abstaining_replicas,
    blocked_peers_for,
    fault_plan_from_json,
    fault_plan_to_json,
    parse_wan_spec,
    partition_components,
    send_delay_for,
    validate_fault_plan,
    wan_delay_map,
)
from repro.runtime.control import LinkUpdate
from repro.runtime.client import ClientConfig, ClientError, OrthrusClient
from repro.runtime.cluster import free_port
from repro.runtime.config import ReplicaRuntimeConfig
from repro.runtime.server import ReplicaServer
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

NUM_REPLICAS = 4
WORKLOAD = WorkloadConfig(num_accounts=128, seed=5, payment_fraction=1.0)


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


# -- plan translation ---------------------------------------------------------


class TestPlanTranslation:
    def test_straggler_slowdown_maps_to_send_delay(self):
        plan = FaultPlan.with_straggler(instance=1, slowdown=10.0)
        assert send_delay_for(plan, 1) == pytest.approx(9 * STRAGGLER_UNIT_DELAY)
        assert send_delay_for(plan, 0) == 0.0

    def test_abstainers_are_the_highest_replicas(self):
        plan = FaultPlan.with_undetectable(2)
        assert abstaining_replicas(plan, 8) == {6, 7}
        assert abstaining_replicas(FaultPlan.none(), 8) == set()

    def test_abstainers_beyond_f_rejected(self):
        with pytest.raises(ConfigurationError):
            abstaining_replicas(FaultPlan.with_undetectable(2), 4)

    def test_fault_plan_json_round_trip(self):
        plan = FaultPlan(
            stragglers={1: 10.0},
            crashes={0: 5.0},
            restarts={0: 15.0},
            view_change_timeout=2.0,
            undetectable_faults=1,
        )
        parsed = fault_plan_from_json(fault_plan_to_json(plan))
        assert parsed.stragglers == plan.stragglers
        assert parsed.crashes == plan.crashes
        assert parsed.restarts == plan.restarts
        assert parsed.view_change_timeout == plan.view_change_timeout
        assert parsed.undetectable_faults == plan.undetectable_faults

    def test_fault_plan_churn_round_trip(self):
        plan = FaultPlan(churn=((1.0, 0, 2.0), (4.0, 1, 1.5)))
        parsed = fault_plan_from_json(fault_plan_to_json(plan))
        assert parsed.churn == ((1.0, 0, 2.0), (4.0, 1, 1.5))

    def test_with_churn_coerces_cycle_fields(self):
        plan = FaultPlan.with_churn([(1, 0, 2), ("3.5", "1", "1.5")])
        assert plan.churn == ((1.0, 0, 2.0), (3.5, 1, 1.5))

    def test_fault_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"crashes": {"0": 5}}))
        plan = fault_plan_from_json(f"@{path}", default_view_change_timeout=3.0)
        assert plan.crashes == {0: 5.0}
        assert plan.view_change_timeout == 3.0

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            "[1, 2]",
            '{"crashs": {"0": 5}}',  # typo must not silently mean "no faults"
            '{"stragglers": {"1": 0.5}}',  # slowdown below 1.0
            '{"restarts": {"0": 5}}',  # restart without a crash
            '{"crashes": {"0": 5}, "restarts": {"0": 4}}',  # restart before crash
            '{"churn": [[1, 0]]}',  # cycle missing its downtime
            '{"churn": [[1, 0, 0]]}',  # downtime must be positive
            '{"churn": [[-1, 0, 2]]}',  # crash time before the run starts
            '{"churn": [[1, 0, 5], [3, 0, 2]]}',  # same replica, cycles overlap
        ],
    )
    def test_malformed_plans_rejected(self, text):
        with pytest.raises(ConfigurationError):
            fault_plan_from_json(text)

    def test_validate_rejects_too_many_faulty(self):
        plan = FaultPlan(crashes={0: 1.0}, undetectable_faults=1)
        with pytest.raises(ConfigurationError):
            validate_fault_plan(plan, num_replicas=4)

    def test_validate_rejects_out_of_range_replica(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(FaultPlan(crashes={9: 1.0}), num_replicas=4)

    def test_validate_rejects_concurrent_churn_beyond_f(self):
        # Both replicas are down during [2.0, 6.0): two faulty at once
        # against f = 1.
        plan = FaultPlan(churn=((1.0, 0, 5.0), (2.0, 1, 5.0)))
        with pytest.raises(ConfigurationError):
            validate_fault_plan(plan, num_replicas=4)

    def test_validate_counts_churn_against_permanent_crashes(self):
        plan = FaultPlan(crashes={0: 1.0}, churn=((2.0, 1, 1.0),))
        with pytest.raises(ConfigurationError):
            validate_fault_plan(plan, num_replicas=4)

    def test_validate_allows_back_to_back_churn_on_different_replicas(self):
        # Replica 0 is back exactly when replica 1 goes down: never more
        # than one faulty at a time, so f = 1 suffices.
        plan = FaultPlan(churn=((1.0, 0, 2.0), (3.0, 1, 2.0)))
        validate_fault_plan(plan, num_replicas=4)


class TestPartitionPlans:
    def test_partition_round_trip(self):
        plan = FaultPlan(
            partitions=((5.0, ((3,),), 3.0),),
            oneway_drops=((2.0, 0, 1, 4.0),),
            wan="wan",
        )
        parsed = fault_plan_from_json(fault_plan_to_json(plan))
        assert parsed.partitions == ((5.0, ((3,),), 3.0),)
        assert parsed.oneway_drops == ((2.0, 0, 1, 4.0),)
        assert parsed.wan == "wan"
        assert parsed.expect_stall is False

    def test_expect_stall_round_trip(self):
        plan = FaultPlan(partitions=((1.0, ((0, 1), (2, 3)), 2.0),), expect_stall=True)
        parsed = fault_plan_from_json(fault_plan_to_json(plan))
        assert parsed.expect_stall is True
        assert parsed.partitions == plan.partitions

    def test_wan_matrix_round_trip(self):
        matrix = ((0.0, 0.05), (0.05, 0.0))
        parsed = fault_plan_from_json(fault_plan_to_json(FaultPlan(wan=matrix)))
        assert parsed.wan == matrix

    def test_with_partition_coerces_groups(self):
        plan = FaultPlan.with_partition("5", [[3], ("1", 2)], "3")
        assert plan.partitions == ((5.0, ((3,), (1, 2)), 3.0),)

    @pytest.mark.parametrize(
        "text",
        [
            '{"partitions": [[5, [[3]]]]}',  # missing duration
            '{"partitions": [[5, 3, 3]]}',  # groups not a list of lists
            '{"partitions": [["x", [[3]], 3]]}',  # non-numeric time
            '{"oneway_drops": [[1, 0, 1]]}',  # missing duration
            '{"oneway_drops": [[1, 0, 0, 3]]}',  # source == destination
            '{"wan": "metro"}',  # unknown model name / not a matrix
            '{"wan": [[0, 1], [1]]}',  # not square
            '{"wan": [[0, -1], [1, 0]]}',  # negative delay
        ],
    )
    def test_malformed_partition_plans_rejected(self, text):
        with pytest.raises(ConfigurationError):
            fault_plan_from_json(text)


class TestPartitionValidation:
    def test_minority_partition_accepted(self):
        validate_fault_plan(
            FaultPlan(partitions=((3.0, ((3,),), 3.0),)), num_replicas=4
        )

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(FaultPlan(partitions=((-1.0, ((3,),), 3.0),)))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(FaultPlan(partitions=((1.0, ((3,),), 0.0),)))

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(FaultPlan(partitions=((1.0, ((),), 3.0),)))

    def test_replica_in_two_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(FaultPlan(partitions=((1.0, ((0, 1), (1, 2)), 3.0),)))

    def test_overlapping_partitions_rejected(self):
        plan = FaultPlan(partitions=((1.0, ((3,),), 5.0), (4.0, ((2,),), 5.0)))
        with pytest.raises(ConfigurationError, match="merge them into a single rule"):
            validate_fault_plan(plan)

    def test_back_to_back_partitions_accepted(self):
        plan = FaultPlan(partitions=((1.0, ((3,),), 2.0), (3.0, ((2,),), 2.0)))
        validate_fault_plan(plan, num_replicas=4)

    def test_half_split_needs_expect_stall(self):
        # {0,1} | {2,3}: every component is below n - f = 3, nobody forms
        # quorums.  Without the explicit acknowledgement this is an error.
        plan = FaultPlan(partitions=((1.0, ((0, 1), (2, 3)), 2.0),))
        with pytest.raises(ConfigurationError, match="expect_stall"):
            validate_fault_plan(plan, num_replicas=4)
        validate_fault_plan(
            FaultPlan(partitions=plan.partitions, expect_stall=True), num_replicas=4
        )

    def test_partition_composes_with_churn_downtime(self):
        # The minority partition alone is fine and the churn alone is fine,
        # but replica 0 is down while replica 3 is isolated: two unavailable
        # at once against f = 1.
        plan = FaultPlan(
            churn=((2.0, 0, 3.0),),
            partitions=((3.0, ((3,),), 1.0),),
        )
        with pytest.raises(ConfigurationError):
            validate_fault_plan(plan, num_replicas=4)

    def test_partition_after_churn_heals_is_fine(self):
        plan = FaultPlan(
            churn=((1.0, 0, 1.0),),
            partitions=((3.0, ((3,),), 1.0),),
        )
        validate_fault_plan(plan, num_replicas=4)

    def test_out_of_range_partition_replica_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(
                FaultPlan(partitions=((1.0, ((7,),), 2.0),)), num_replicas=4
            )

    def test_out_of_range_oneway_replica_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_plan(
                FaultPlan(oneway_drops=((1.0, 0, 9, 2.0),)), num_replicas=4
            )


class TestBlockedPeers:
    def test_remainder_forms_implicit_component(self):
        components = partition_components(((3,),), 4)
        assert components == [{3}, {0, 1, 2}]

    def test_full_groups_leave_no_remainder(self):
        assert partition_components(((0, 1), (2, 3)), 4) == [{0, 1}, {2, 3}]

    def test_symmetric_partition_blocks_both_directions(self):
        kwargs = dict(
            active_partitions=[((3,),)], active_oneways=set(), num_replicas=4
        )
        assert blocked_peers_for(3, **kwargs) == (0, 1, 2)
        assert blocked_peers_for(0, **kwargs) == (3,)
        assert blocked_peers_for(1, **kwargs) == (3,)

    def test_oneway_blocks_only_the_source(self):
        kwargs = dict(
            active_partitions=[], active_oneways={(0, 2)}, num_replicas=4
        )
        assert blocked_peers_for(0, **kwargs) == (2,)
        assert blocked_peers_for(2, **kwargs) == ()

    def test_rules_compose(self):
        blocked = blocked_peers_for(
            0,
            active_partitions=[((3,),)],
            active_oneways={(0, 1)},
            num_replicas=4,
        )
        assert blocked == (1, 3)


class TestWanSpecs:
    def test_none_passes_through(self):
        assert parse_wan_spec(None) is None
        assert wan_delay_map(None, 0, 4) == {}

    def test_named_models_accepted(self):
        assert parse_wan_spec("wan") == "wan"
        assert parse_wan_spec("lan") == "lan"

    def test_json_matrix_parsed(self):
        assert parse_wan_spec("[[0, 0.05], [0.05, 0]]") == (
            (0.0, 0.05),
            (0.05, 0.0),
        )

    def test_matrix_file_reference(self, tmp_path):
        path = tmp_path / "wan.json"
        path.write_text("[[0, 0.1], [0.1, 0]]")
        assert parse_wan_spec(f"@{path}") == ((0.0, 0.1), (0.1, 0.0))

    def test_lan_is_flat(self):
        delays = wan_delay_map("lan", 0, 4)
        assert set(delays) == {1, 2, 3}
        assert len(set(delays.values())) == 1

    def test_wan_model_round_robin_regions(self):
        # Replicas 0 and 4 share a region under node_id % regions, so their
        # delays towards replica 1 agree; intra-region beats cross-region.
        d0 = wan_delay_map("wan", 0, 8)
        d4 = wan_delay_map("wan", 4, 8)
        assert d0[1] == d4[1]
        assert d0[4] < d0[1]  # same region vs different region

    def test_explicit_matrix_delays(self):
        matrix = ((0.0, 0.2), (0.3, 0.0))
        delays = wan_delay_map(matrix, 0, 4)
        # Replicas 0 and 2 are region 0, replicas 1 and 3 region 1.
        assert delays == {1: 0.2, 2: 0.0, 3: 0.2}
        assert wan_delay_map(matrix, 1, 4) == {0: 0.3, 2: 0.3, 3: 0.0}


class FakeCluster:
    def __init__(self):
        self.killed = []
        self.restarted = []
        self.dead = set()

    def kill_replica(self, replica_id):
        self.killed.append(replica_id)
        self.dead.add(replica_id)

    def restart_replica(self, replica_id):
        self.restarted.append(replica_id)
        self.dead.discard(replica_id)

    def check(self):
        return sorted(self.dead)


class TestChaosController:
    def test_poll_executes_due_actions_in_order(self):
        cluster = FakeCluster()
        plan = FaultPlan(crashes={0: 1.0, 2: 3.0}, restarts={0: 2.0})
        controller = ChaosController(cluster, plan)
        assert controller.poll(0.5) == []
        events = controller.poll(2.5)
        assert [(e.action, e.replica) for e in events] == [
            ("crash", 0),
            ("restart", 0),
        ]
        assert cluster.killed == [0] and cluster.restarted == [0]
        assert not controller.exhausted
        controller.poll(10.0)
        assert controller.exhausted
        assert controller.down == {2}

    def test_unexpected_exits_excludes_chaos_kills(self):
        cluster = FakeCluster()
        controller = ChaosController(cluster, FaultPlan(crashes={1: 0.0}))
        controller.poll(0.1)
        cluster.dead.add(3)  # died on its own
        assert controller.unexpected_exits() == [3]

    def test_churn_expands_into_crash_restart_cycles(self):
        cluster = FakeCluster()
        plan = FaultPlan(churn=((1.0, 0, 1.0), (3.0, 0, 1.0)))
        controller = ChaosController(cluster, plan)
        controller.poll(2.5)
        assert [(e.action, e.replica) for e in controller.events] == [
            ("crash", 0),
            ("restart", 0),
        ]
        assert controller.down == set()
        controller.poll(10.0)
        assert [(e.action, e.replica) for e in controller.events] == [
            ("crash", 0),
            ("restart", 0),
            ("crash", 0),
            ("restart", 0),
        ]
        assert controller.exhausted
        assert cluster.killed == [0, 0] and cluster.restarted == [0, 0]


class PartitionFakeCluster(FakeCluster):
    """Fake with the link-control surface the partition actions need."""

    class _Spec:
        num_replicas = 4

    spec = _Spec()

    def __init__(self):
        super().__init__()
        self.link_updates = []  # (replica, blocked tuple)

    def send_control(self, replica_id, message):
        assert isinstance(message, LinkUpdate)
        if replica_id in self.dead:
            raise ConnectionRefusedError("replica is down")
        self.link_updates.append((replica_id, message.blocked))


class TestPartitionController:
    def test_partition_pushes_absolute_blocked_sets_then_heals(self):
        cluster = PartitionFakeCluster()
        plan = FaultPlan.with_partition(1.0, ((3,),), 2.0)
        controller = ChaosController(cluster, plan)

        assert controller.poll(0.5) == []
        assert cluster.link_updates == []

        events = controller.poll(1.5)
        assert [(e.action, e.replica) for e in events] == [("partition", 0)]
        assert events[0].describe() == "partition {3} | {0,1,2}"
        # Every replica got the absolute set it must not send to.
        assert dict(cluster.link_updates) == {0: (3,), 1: (3,), 2: (3,), 3: (0, 1, 2)}

        cluster.link_updates.clear()
        events = controller.poll(3.5)
        assert [(e.action, e.replica) for e in events] == [("heal", 0)]
        # The heal clears every blocked set.
        assert dict(cluster.link_updates) == {0: (), 1: (), 2: (), 3: ()}
        assert controller.exhausted
        assert controller.unfired_actions() == []

    def test_oneway_drop_blocks_only_the_source(self):
        cluster = PartitionFakeCluster()
        plan = FaultPlan(oneway_drops=((1.0, 0, 2, 2.0),))
        controller = ChaosController(cluster, plan)
        events = controller.poll(1.5)
        assert [(e.action, e.describe()) for e in events] == [("drop", "drop 0->2")]
        assert dict(cluster.link_updates) == {0: (2,), 1: (), 2: (), 3: ()}
        controller.poll(10.0)
        assert controller.events[-1].action == "undrop"

    def test_restart_inside_partition_window_repushes_rules(self):
        # Replica 0 churns while replica 3 is... no: that composition is
        # rejected.  Churn the *partitioned* replica itself: its fresh
        # process starts with an empty blocked set and must be re-isolated.
        cluster = PartitionFakeCluster()
        plan = FaultPlan(
            churn=((1.5, 3, 1.0),),
            partitions=((1.0, ((3,),), 3.0),),
        )
        controller = ChaosController(cluster, plan)
        controller.poll(2.0)  # partition fired, replica 3 crashed
        cluster.link_updates.clear()
        controller.poll(2.6)  # replica 3 restarted inside the window
        assert cluster.restarted == [3]
        # The re-push re-isolated the restarted replica.
        assert (3, (0, 1, 2)) in cluster.link_updates

    def test_down_replica_is_skipped_not_fatal(self):
        cluster = PartitionFakeCluster()
        plan = FaultPlan(
            crashes={0: 0.5},
            partitions=((1.0, ((3,),), 1.0),),
        )
        controller = ChaosController(cluster, plan)
        controller.poll(1.5)
        # Replica 0 is down: no update sent to it, everyone else configured.
        assert all(replica != 0 for replica, _ in cluster.link_updates)
        assert (3, (0, 1, 2)) in cluster.link_updates

    def test_episodes_pair_partition_with_heal(self):
        cluster = PartitionFakeCluster()
        plan = FaultPlan(
            crashes={0: 0.5},
            restarts={0: 4.0},
            partitions=((1.0, ((3,),), 1.0),),
        )
        controller = ChaosController(cluster, plan)
        controller.poll(10.0)
        episodes = controller.episodes()
        assert len(episodes) == 2
        (crash_start, crash_end, crash_label) = episodes[0]
        (part_start, part_end, part_label) = episodes[1]
        assert crash_label == "crash replica 0"
        assert crash_end is not None
        assert part_label == "partition {3} | {0,1,2}"
        assert part_end is not None

    def test_open_episode_when_heal_never_fires(self):
        cluster = PartitionFakeCluster()
        plan = FaultPlan.with_partition(1.0, ((3,),), 100.0)
        controller = ChaosController(cluster, plan)
        controller.poll(2.0)
        ((start, end, label),) = controller.episodes()
        assert end is None
        assert controller.unfired_actions() == [(101.0, "heal", 0)]


# -- in-process degradation scenarios ----------------------------------------


async def start_servers(
    num_instances: int = 2,
    *,
    view_change_timeout: float = 1.0,
    config_for=None,
) -> tuple[list[ReplicaServer], tuple]:
    peers = tuple(("127.0.0.1", free_port()) for _ in range(NUM_REPLICAS))
    servers = []
    for replica_id in range(NUM_REPLICAS):
        config = ReplicaRuntimeConfig(
            replica_id=replica_id,
            peers=peers,
            num_instances=num_instances,
            batch_size=32,
            batch_interval=0.02,
            view_change_timeout=view_change_timeout,
            workload=WORKLOAD,
        )
        if config_for is not None:
            config = config_for(config)
        server = ReplicaServer(config)
        await server.start()
        servers.append(server)
    return servers, peers


async def stop_servers(servers: list[ReplicaServer]) -> None:
    for server in servers:
        server.stop()
        await server._shutdown()


async def crash_server(server: ReplicaServer) -> None:
    """Abrupt in-process crash: no goodbye, sockets just go away."""
    server.replica.crash()
    await server._shutdown()


async def submit_all(client, workload, count):
    futures = [client.submit_nowait(workload.next_transaction()) for _ in range(count)]
    return await asyncio.gather(*futures, return_exceptions=True)


async def settled_statuses(client, *, minimum_committed: int, attempts: int = 80):
    statuses = await client.cluster_status()
    for _ in range(attempts):
        statuses = await client.cluster_status()
        digests = {s.state_digest for s in statuses}
        if len(digests) == 1 and all(
            s.committed >= minimum_committed for s in statuses
        ):
            break
        await asyncio.sleep(0.1)
    return statuses


def test_leader_crash_triggers_view_change_and_cluster_recovers():
    async def scenario():
        servers, peers = await start_servers(view_change_timeout=1.0)
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(peers), ClientConfig(timeout=2.0, retries=5)
            ) as client:
                first = await submit_all(client, workload, 40)
                assert all(r.committed for r in first)

                # Replica 0 leads instance 0 in view 0: kill it mid-run.
                await crash_server(servers[0])

                second = await submit_all(client, workload, 60)
                failures = [r for r in second if isinstance(r, ClientError)]
                assert not failures, f"submissions failed after crash: {failures[:3]}"
                assert all(r.committed for r in second)

                statuses = await settled_statuses(client, minimum_committed=100)
                survivors = {s.replica for s in statuses}
                assert survivors == {1, 2, 3}
                # The crashed leader's instance was recovered by a view change.
                assert all(s.view_changes >= 1 for s in statuses)
                assert len({s.state_digest for s in statuses}) == 1
                assert all(s.committed >= 100 for s in statuses)
        finally:
            await stop_servers(servers[1:])

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


def test_straggler_replica_slows_but_does_not_stall():
    async def scenario():
        def config_for(config):
            if config.replica_id == 1:
                from dataclasses import replace

                return replace(config, send_delay=0.03)
            return config

        servers, peers = await start_servers(config_for=config_for)
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(peers), ClientConfig(timeout=3.0, retries=3)
            ) as client:
                results = await submit_all(client, workload, 60)
                assert all(r.committed for r in results)
                statuses = await settled_statuses(client, minimum_committed=60)
                assert len({s.state_digest for s in statuses}) == 1
                # The straggler is slow, not faulty: no failure detection.
                assert all(s.view_changes == 0 for s in statuses)
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


def test_byzantine_abstention_is_undetected_but_quorums_still_form():
    async def scenario():
        def config_for(config):
            if config.replica_id == NUM_REPLICAS - 1:
                from dataclasses import replace

                return replace(config, byzantine_abstain=True)
            return config

        servers, peers = await start_servers(config_for=config_for)
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(peers), ClientConfig(timeout=3.0, retries=3)
            ) as client:
                results = await submit_all(client, workload, 60)
                assert all(r.committed for r in results)
                # The abstainer never proposes outside its instances and never
                # votes elsewhere, yet no timeout fires: undetectable.
                statuses = await settled_statuses(client, minimum_committed=60)
                assert all(s.view_changes == 0 for s in statuses)
                honest = [s for s in statuses if s.replica != NUM_REPLICAS - 1]
                assert len({s.state_digest for s in honest}) == 1
                assert all(s.committed >= 60 for s in honest)
                # The abstainer really filtered consensus traffic.
                abstainer = servers[NUM_REPLICAS - 1]
                assert abstainer.transport.frames_filtered > 0
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


class TestUnfiredActions:
    def test_unfired_actions_reported_and_fail_the_run(self):
        from repro.runtime.chaos import ChaosRunResult

        cluster = FakeCluster()
        controller = ChaosController(cluster, FaultPlan(crashes={0: 100.0}))
        controller.poll(1.0)  # run ended long before the scheduled crash

        class _Metrics:
            committed = 10

        class _Report:
            metrics = _Metrics()
            digests_agree = True
            view_changes = {1: 0}

            def lines(self):
                return []

        result = ChaosRunResult(
            report=_Report(),
            events=list(controller.events),
            unexpected_exits=controller.unexpected_exits(),
            unfired_actions=controller.unfired_actions(),
        )
        assert result.unfired_actions == [(100.0, "crash", 0)]
        assert not result.ok  # "survived a fault that never happened" is a lie
        assert any("never fired" in line for line in result.lines())

    def test_crash_joins_down_set_before_the_kill(self):
        # The async driver kills in a worker thread; a concurrent
        # unexpected_exits() reader must already see the exit as intentional.
        class OrderSensitiveCluster(FakeCluster):
            def __init__(self, controller_ref):
                super().__init__()
                self.controller_ref = controller_ref
                self.observed = []

            def kill_replica(self, replica_id):
                self.observed.append(replica_id in self.controller_ref[0].down)
                super().kill_replica(replica_id)

        ref = []
        cluster = OrderSensitiveCluster(ref)
        controller = ChaosController(cluster, FaultPlan(crashes={1: 0.0}))
        ref.append(controller)
        controller.poll(0.1)
        assert cluster.observed == [True]
        assert controller.unexpected_exits() == []
