"""Unit tests for frame encoding and runtime configuration."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime.config import (
    ReplicaRuntimeConfig,
    format_endpoint,
    is_uds_endpoint,
    parse_endpoint,
    uds_path,
)
from repro.runtime.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    encode_frame,
    read_frame,
)
from repro.workload.config import WorkloadConfig

PEERS = tuple(("127.0.0.1", 7000 + i) for i in range(4))


def drain_frames(data: bytes) -> list[bytes | None]:
    """Feed raw bytes through an asyncio StreamReader and read frames."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames: list[bytes | None] = []
        while True:
            frame = await read_frame(reader)
            frames.append(frame)
            if frame is None:
                break
        return frames

    return asyncio.run(run())


class TestFraming:
    def test_round_trip_multiple_frames(self):
        payloads = [b"", b"x", b"hello world" * 100]
        stream = b"".join(encode_frame(p) for p in payloads)
        assert drain_frames(stream) == payloads + [None]

    def test_clean_eof_returns_none(self):
        assert drain_frames(b"") == [None]

    def test_truncated_frame_raises(self):
        stream = encode_frame(b"full")[:-2]
        with pytest.raises(FrameError, match="mid-frame"):
            drain_frames(stream)

    def test_oversized_announcement_raises(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FrameError, match="max"):
            drain_frames(header + b"x")

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(FrameError):
            encode_frame(b"\0" * (MAX_FRAME_BYTES + 1))


def drain_batches(chunks: list[bytes]) -> list[list[bytes] | None]:
    """Feed byte chunks through a FrameReader and collect read_batch calls."""

    async def run():
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        frames = FrameReader(reader)
        batches: list[list[bytes] | None] = []
        while True:
            batch = await frames.read_batch()
            batches.append(batch)
            if batch is None:
                break
        return batches

    return asyncio.run(run())


class TestFrameReader:
    def test_burst_surfaces_in_one_batch(self):
        payloads = [b"", b"x", b"hello" * 50, b"y"]
        stream = b"".join(encode_frame(p) for p in payloads)
        assert drain_batches([stream]) == [payloads, None]

    def test_clean_eof_returns_none(self):
        assert drain_batches([]) == [None]

    def test_split_across_chunks_reassembles(self):
        stream = encode_frame(b"abcdef" * 100)
        # Feed in awkward slices: the frame spans every chunk boundary.
        chunks = [stream[:3], stream[3:7], stream[7:]]
        batches = drain_batches(chunks)
        assert batches == [[b"abcdef" * 100], None]

    def test_mid_frame_eof_raises(self):
        with pytest.raises(FrameError, match="mid-frame"):
            drain_batches([encode_frame(b"full")[:-2]])

    def test_oversized_announcement_raises(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FrameError, match="max"):
            drain_batches([header + b"x"])


class TestEndpoints:
    def test_parse_and_format(self):
        assert parse_endpoint("10.0.0.1:7001") == ("10.0.0.1", 7001)
        assert format_endpoint(("10.0.0.1", 7001)) == "10.0.0.1:7001"

    @pytest.mark.parametrize("bad", ["nohost", ":7000", "host:", "host:abc", "host:0"])
    def test_invalid_endpoints(self, bad):
        with pytest.raises(ConfigurationError):
            parse_endpoint(bad)

    def test_uds_round_trip(self):
        endpoint = parse_endpoint("unix:/tmp/replica-0.sock")
        assert endpoint == ("unix:/tmp/replica-0.sock", 0)
        assert is_uds_endpoint(endpoint)
        assert uds_path(endpoint) == "/tmp/replica-0.sock"
        assert format_endpoint(endpoint) == "unix:/tmp/replica-0.sock"

    def test_tcp_endpoint_is_not_uds(self):
        assert not is_uds_endpoint(("127.0.0.1", 7001))

    def test_empty_uds_path_is_invalid(self):
        with pytest.raises(ConfigurationError):
            parse_endpoint("unix:")


class TestReplicaRuntimeConfig:
    def test_defaults(self):
        config = ReplicaRuntimeConfig(replica_id=1, peers=PEERS)
        assert config.num_replicas == 4
        assert config.instances == 4
        assert config.listen_endpoint == ("127.0.0.1", 7001)

    def test_too_few_replicas(self):
        with pytest.raises(ConfigurationError, match="at least 4"):
            ReplicaRuntimeConfig(replica_id=0, peers=PEERS[:3])

    def test_replica_id_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            ReplicaRuntimeConfig(replica_id=4, peers=PEERS)

    def test_for_replica_views_same_cluster(self):
        config = ReplicaRuntimeConfig(replica_id=0, peers=PEERS)
        sibling = config.for_replica(2)
        assert sibling.peers == config.peers
        assert sibling.listen_endpoint == ("127.0.0.1", 7002)

    def test_genesis_is_identical_across_replicas(self):
        """Every replica must boot from the same state or diverge instantly."""
        workload = WorkloadConfig(num_accounts=64, seed=9)
        digests = {
            ReplicaRuntimeConfig(
                replica_id=i, peers=PEERS, workload=workload
            ).genesis_digest()
            for i in range(4)
        }
        assert len(digests) == 1

    def test_build_core_populates_genesis(self):
        config = ReplicaRuntimeConfig(
            replica_id=0, peers=PEERS, workload=WorkloadConfig(num_accounts=64)
        )
        core = config.build_core()
        assert len(core.store) >= 64
        assert core.store.state_digest() == config.genesis_digest()
