"""Durability units: snapshot round-trips, WAL-bounded recovery, wipe.

A consensus core is a pure state machine over its delivered-block sequence,
so these tests drive cores directly — one leader delivering blocks in order
— and check the two recovery invariants the live path relies on:

* a snapshot cut at a quiescent point restores onto a fresh core with the
  exact state digest *and* the restored core keeps executing future blocks
  identically to the original;
* :class:`ReplicaDurability.recover` rebuilds the same state from the run
  directory alone, preferring the newest valid snapshot and replaying only
  the WAL suffix above it; a corrupt snapshot means the compacted log no
  longer applies contiguously, so recovery restarts clean rather than
  execute across the hole.
"""

from __future__ import annotations

import json

import pytest

from repro.ledger.blocks import Block
from repro.ledger.transactions import reset_transaction_counter
from repro.runtime.config import ReplicaRuntimeConfig
from repro.runtime.durability import (
    ReplicaDurability,
    SnapshotError,
    core_is_quiescent,
    list_snapshots,
    load_snapshot,
    restore_core,
    snapshot_core,
)
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

WORKLOAD = WorkloadConfig(num_accounts=64, seed=11, payment_fraction=1.0)

PEERS = tuple(("127.0.0.1", 9100 + index) for index in range(4))


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


def make_config(epoch_length: int = 4) -> ReplicaRuntimeConfig:
    return ReplicaRuntimeConfig(
        replica_id=0,
        peers=PEERS,
        num_instances=2,
        batch_size=4,
        epoch_length=epoch_length,
        workload=WORKLOAD,
    )


def next_block(core, instance: int, sequence: int, transactions) -> Block:
    return Block.create(
        instance=instance,
        sequence_number=sequence,
        transactions=transactions,
        state=core.delivered_state(),
        proposer=0,
        epoch=sequence // core.config.epoch_length,
        rank=core.next_rank() if core.uses_ranks else None,
    )


def drive(core, workload, rounds: int, *, batch_size: int = 3, sink=None):
    """Deliver ``rounds`` of single-leader blocks, ending quiescent.

    Returns the delivered blocks in delivery order so equivalence tests can
    feed the identical sequence to a second core.  ``sink`` (e.g. a WAL
    hook) sees every block right after delivery.
    """
    blocks: list[Block] = []
    next_seq = [d + 1 for d in core.delivered_state().sequence_numbers]

    def deliver(instance: int, transactions) -> None:
        block = next_block(core, instance, next_seq[instance], transactions)
        next_seq[instance] += 1
        core.on_block_delivered(block)
        if sink is not None:
            sink(block)
        blocks.append(block)

    for _ in range(rounds):
        for instance in range(core.config.num_instances):
            for _ in range(batch_size):
                core.submit(workload.next_transaction())
            deliver(instance, core.select_batch(instance, batch_size))
    # Ladon's bar keeps the highest-ranked block waiting until every other
    # instance shows a rank above it; empty flush blocks drain the orderer
    # to a quiescent point (exactly what live no-op proposals do).
    for step in range(4 * core.config.num_instances):
        if core_is_quiescent(core):
            break
        deliver(step % core.config.num_instances, [])
    assert core_is_quiescent(core), "driver failed to reach a quiescent point"
    return blocks


# -- snapshot round trips -----------------------------------------------------


class TestSnapshots:
    def test_round_trip_preserves_state_and_future_execution(self):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        core = config.build_core()
        drive(core, workload, rounds=6)

        snapshot = snapshot_core(core, epoch=2, checkpoint_digest="cp")
        assert snapshot is not None
        restored = config.build_core()
        restore_core(restored, snapshot)

        assert restored.store.state_digest() == core.store.state_digest()
        assert list(restored.delivered_state().sequence_numbers) == list(
            core.delivered_state().sequence_numbers
        )
        # The restored core is not just a byte copy of the store: it must
        # keep executing future blocks identically to the original.
        for block in drive(core, workload, rounds=4):
            restored.on_block_delivered(block)
        assert restored.store.state_digest() == core.store.state_digest()
        assert restored.confirmed_count == core.confirmed_count

    def test_snapshot_refused_while_blocks_wait_on_the_bar(self):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        core = config.build_core()
        # One block per instance: the second carries the highest rank and
        # stays waiting on the bar, so the core is not quiescent.
        for instance in range(core.config.num_instances):
            core.submit(workload.next_transaction())
            core.on_block_delivered(
                next_block(core, instance, 0, core.select_batch(instance, 1))
            )
        assert not core_is_quiescent(core)
        assert snapshot_core(core, epoch=0, checkpoint_digest="") is None

    def test_restore_rejects_tampered_state(self):
        config = make_config()
        core = config.build_core()
        drive(core, EthereumStyleWorkload(WORKLOAD), rounds=3)
        snapshot = snapshot_core(core, epoch=1, checkpoint_digest="cp")
        assert snapshot is not None
        snapshot["state_digest"] = "0" * 64
        with pytest.raises(SnapshotError):
            restore_core(config.build_core(), snapshot)

    def test_restore_rejects_configuration_mismatch(self):
        core = make_config(epoch_length=4).build_core()
        drive(core, EthereumStyleWorkload(WORKLOAD), rounds=3)
        snapshot = snapshot_core(core, epoch=1, checkpoint_digest="cp")
        assert snapshot is not None
        with pytest.raises(SnapshotError):
            restore_core(make_config(epoch_length=8).build_core(), snapshot)


# -- run-directory recovery ---------------------------------------------------


class TestReplicaDurability:
    def test_recover_replays_wal_from_genesis(self, tmp_path):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        durability = ReplicaDurability(tmp_path)
        core = config.build_core()
        blocks = drive(core, workload, 5, sink=durability.on_block_delivered)
        durability.on_view_installed(0, 3)
        durability.close()

        successor = ReplicaDurability(tmp_path)
        recovered, local = successor.recover(config.build_core(), config.build_core)
        assert local.snapshot_epoch is None
        assert local.blocks_replayed == len(blocks)
        assert local.views == [3, 0]
        assert recovered.store.state_digest() == core.store.state_digest()
        successor.close()

    def test_recover_prefers_snapshot_and_replays_the_wal_suffix(self, tmp_path):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        durability = ReplicaDurability(tmp_path)
        core = config.build_core()
        drive(core, workload, 4, sink=durability.on_block_delivered)
        durability.on_epoch_completed(core, 1, "cp-digest")
        assert durability.snapshots_written == 1
        suffix = drive(core, workload, 3, sink=durability.on_block_delivered)
        durability.close()

        successor = ReplicaDurability(tmp_path)
        recovered, local = successor.recover(config.build_core(), config.build_core)
        assert local.snapshot_epoch == 1
        assert local.blocks_replayed == len(suffix)
        # The snapshot cut compacted the WAL: the covered prefix (and the
        # epoch mark the snapshot itself records) no longer replays from it.
        assert local.executed_epochs == []
        assert recovered.store.state_digest() == core.store.state_digest()
        successor.close()

    def test_snapshot_cut_compacts_the_wal(self, tmp_path):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        durability = ReplicaDurability(tmp_path)
        core = config.build_core()
        drive(core, workload, 4, sink=durability.on_block_delivered)
        before = durability.wal_bytes
        durability.on_epoch_completed(core, 1, "cp-digest")
        assert durability.snapshots_written == 1
        # The covered prefix left the log: the wal_bytes gauge dropped.
        assert durability.wal_bytes < before
        # And the writer reopened cleanly: later deliveries keep appending.
        suffix = drive(core, workload, 1, sink=durability.on_block_delivered)
        assert suffix
        assert durability.wal_bytes > 0
        durability.close()

    def test_corrupt_snapshot_leaves_the_compacted_suffix_unreplayed(self, tmp_path):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        durability = ReplicaDurability(tmp_path)
        core = config.build_core()
        drive(core, workload, 4, sink=durability.on_block_delivered)
        durability.on_epoch_completed(core, 1, "cp-digest")
        suffix = drive(core, workload, 3, sink=durability.on_block_delivered)
        assert suffix
        durability.close()

        # Flip the recorded digest: the snapshot now fails verification and
        # is discarded.  The snapshot cut compacted the WAL, so the log no
        # longer reaches down to genesis — replaying the suffix onto a
        # genesis core would execute across the hole and diverge.  Recovery
        # must refuse it and restart clean; peer state transfer (which can
        # adopt any snapshot over genesis) rebuilds the state instead.
        path = list_snapshots(tmp_path)[0]
        snapshot = load_snapshot(path)
        snapshot["state_digest"] = "f" * 64
        path.write_text(json.dumps(snapshot), encoding="utf-8")

        successor = ReplicaDurability(tmp_path)
        recovered, local = successor.recover(config.build_core(), config.build_core)
        assert local.snapshot_epoch is None
        assert local.blocks_replayed == 0
        assert recovered.store.state_digest() == config.genesis_digest()
        successor.close()

    def test_wipe_discards_wal_and_snapshots(self, tmp_path):
        config = make_config()
        workload = EthereumStyleWorkload(WORKLOAD)
        durability = ReplicaDurability(tmp_path)
        core = config.build_core()
        drive(core, workload, 4, sink=durability.on_block_delivered)
        durability.on_epoch_completed(core, 1, "cp-digest")
        assert list_snapshots(tmp_path)

        durability.wipe()
        assert not list_snapshots(tmp_path)
        recovered, local = durability.recover(config.build_core(), config.build_core)
        assert not local.recovered_anything
        assert recovered.store.state_digest() == config.genesis_digest()
        durability.close()
