"""Crash-recovery battery: kill a durable replica, restart it, rejoin fully.

Four in-process :class:`ReplicaServer` instances run on one event loop over
real localhost TCP, each with a run directory (WAL + snapshots).  A replica
is killed at the battery's crash points — mid-epoch, mid-view-change, and
with a torn WAL tail (the gap between the last fsync and the crash) — then
restarted on the same endpoint and run directory.  The acceptance contract:

* the recovered replica converges to the *exact* state digest of the
  survivors (snapshot + WAL replay + peer state transfer), and
* it rejoins as a **full** participant.  In the no-view-change scenarios
  instance 0 still belongs to the recovered replica in view 0, so instance 0
  advancing past its pre-crash frontier proves the recovered replica *led*
  proposals again — backed up by its ``consensus.blocks_proposed`` counter,
  which starts at zero in the restarted process.

The amount of load landed before each kill is randomised (seeded) so the
crash points wander across epoch boundaries from run to run without losing
reproducibility.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.ledger.transactions import reset_transaction_counter
from repro.runtime.client import ClientConfig, ClientError, OrthrusClient
from repro.runtime.cluster import ClusterSpec, LocalCluster, free_port
from repro.runtime.config import ReplicaRuntimeConfig
from repro.runtime.server import ReplicaServer
from repro.runtime.wal import WAL_FILE_NAME
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

NUM_REPLICAS = 4
WORKLOAD = WorkloadConfig(num_accounts=128, seed=9, payment_fraction=1.0)

#: Randomised-but-reproducible crash points: how much load lands before each
#: kill, so crashes wander relative to epoch boundaries across runs.
CRASH_POINTS = random.Random(0x5EED)


@pytest.fixture(autouse=True)
def _fresh_tx_ids():
    reset_transaction_counter()


def cluster_configs(tmp_path, *, epoch_length=8, view_change_timeout=5.0):
    peers = tuple(("127.0.0.1", free_port()) for _ in range(NUM_REPLICAS))
    return [
        ReplicaRuntimeConfig(
            replica_id=replica_id,
            peers=peers,
            num_instances=2,
            batch_size=16,
            batch_interval=0.02,
            epoch_length=epoch_length,
            view_change_timeout=view_change_timeout,
            workload=WORKLOAD,
            run_dir=str(tmp_path / f"replica-{replica_id}"),
        )
        for replica_id in range(NUM_REPLICAS)
    ]


async def start_server(config: ReplicaRuntimeConfig) -> ReplicaServer:
    server = ReplicaServer(config)
    await server.start()
    return server


async def stop_servers(servers) -> None:
    for server in servers:
        if server is None:
            continue
        server.stop()
        await server._shutdown()


async def crash_server(server: ReplicaServer) -> None:
    """Abrupt in-process crash: no goodbye, sockets just go away."""
    server.replica.crash()
    await server._shutdown()


async def submit_all(client, workload, count):
    futures = [client.submit_nowait(workload.next_transaction()) for _ in range(count)]
    return await asyncio.gather(*futures, return_exceptions=True)


async def settled_statuses(client, *, minimum_committed, attempts=120):
    """Poll until all four replicas agree on one digest at the watermark.

    The watermark is checked against the *highest* committed counter: a
    restarted replica reaches the common digest through state transfer,
    which does not replay outcomes through its metrics, so its own counter
    only covers post-restart traffic.
    """
    statuses = await client.cluster_status()
    for _ in range(attempts):
        statuses = await client.cluster_status()
        digests = {s.state_digest for s in statuses}
        if (
            len(statuses) == NUM_REPLICAS
            and len(digests) == 1
            and max(s.committed for s in statuses) >= minimum_committed
        ):
            break
        await asyncio.sleep(0.1)
    return statuses


def assert_no_failures(results):
    failures = [r for r in results if isinstance(r, (ClientError, Exception))]
    assert not failures, f"submissions failed: {failures[:3]}"
    assert all(r.committed for r in results)


def test_crash_mid_epoch_recovers_from_wal_and_leads_again(tmp_path):
    """Kill mid-epoch, restart inside the failure-detector window.

    No view change fires, so instance 0 still belongs to the recovered
    replica in view 0 — every instance-0 block committed after the restart
    was proposed by the replica that just recovered.
    """
    pre_crash = 24 + CRASH_POINTS.randrange(16)

    async def scenario():
        configs = cluster_configs(tmp_path, view_change_timeout=5.0)
        servers = [await start_server(config) for config in configs]
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(timeout=3.0, retries=5)
            ) as client:
                assert_no_failures(await submit_all(client, workload, pre_crash))
                frontier_before = max(
                    s.delivered_frontier[0] for s in await client.cluster_status()
                )

                await crash_server(servers[0])
                servers[0] = None
                restarted = await start_server(configs[0])
                servers[0] = restarted

                # Local recovery really happened: the restarted core is past
                # genesis before any new client traffic arrives.
                assert restarted.recovery_seconds > 0.0
                recovered_frontier = (
                    restarted.replica.core.delivered_state().sequence_numbers
                )
                assert any(sequence >= 0 for sequence in recovered_frontier)

            # Clients do not reconnect: the first client's socket to
            # replica 0 died with the crash, so post-restart traffic (which
            # must reach the recovered leader) needs a fresh client.
            async with OrthrusClient(
                list(configs[0].peers),
                ClientConfig(client_id=1500, timeout=3.0, retries=5),
            ) as client:
                assert_no_failures(await submit_all(client, workload, 40))

            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(client_id=2000, timeout=3.0)
            ) as probe:
                statuses = await settled_statuses(
                    probe, minimum_committed=pre_crash + 40
                )
                assert {s.replica for s in statuses} == {0, 1, 2, 3}
                assert len({s.state_digest for s in statuses}) == 1
                # Nothing ever rotated a leader out...
                assert all(s.view_changes == 0 for s in statuses)
                # ...so only the recovered replica can have advanced
                # instance 0 past its pre-crash frontier.
                assert all(
                    s.delivered_frontier[0] > frontier_before for s in statuses
                )
            snapshot = restarted.registry.snapshot()
            assert snapshot["consensus.blocks_proposed"] > 0
            assert snapshot["durability.recovery_seconds"] > 0
            assert snapshot["durability.wal_bytes"] > 0
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


def test_crash_through_view_change_rejoins_with_installed_views(tmp_path):
    """Kill a leader long enough for a view change, then bring it back.

    The recovered replica must learn the views installed while it was down
    (carried in the recovery replies) and still converge to the survivors'
    digest as a voting participant.
    """
    pre_crash = 16 + CRASH_POINTS.randrange(16)

    async def scenario():
        configs = cluster_configs(tmp_path, view_change_timeout=1.0)
        servers = [await start_server(config) for config in configs]
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(timeout=3.0, retries=5)
            ) as client:
                assert_no_failures(await submit_all(client, workload, pre_crash))

                await crash_server(servers[0])
                servers[0] = None
                # Survivors commit through the view change while 0 is down.
                assert_no_failures(await submit_all(client, workload, 40))

                restarted = await start_server(configs[0])
                servers[0] = restarted
                assert restarted.replica.endpoints[0].view >= 1
                assert_no_failures(await submit_all(client, workload, 24))

            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(client_id=2000, timeout=3.0)
            ) as probe:
                statuses = await settled_statuses(
                    probe, minimum_committed=pre_crash + 64
                )
                assert {s.replica for s in statuses} == {0, 1, 2, 3}
                assert len({s.state_digest for s in statuses}) == 1
                # Survivors ran the view-change protocol; the restarted
                # replica *adopted* the result (fast-forward, asserted on its
                # endpoint above), so its own protocol counter stays 0.
                assert all(
                    s.view_changes >= 1 for s in statuses if s.replica != 0
                )
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


def test_torn_wal_tail_is_recovered_through_state_transfer(tmp_path):
    """Crash between the last fsync and the kill: the WAL loses its tail.

    The torn record must be dropped silently and the lost blocks re-fetched
    from peers, landing on the survivors' exact digest anyway.
    """
    pre_crash = 24 + CRASH_POINTS.randrange(16)

    async def scenario():
        configs = cluster_configs(tmp_path, view_change_timeout=5.0)
        servers = [await start_server(config) for config in configs]
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(timeout=3.0, retries=5)
            ) as client:
                assert_no_failures(await submit_all(client, workload, pre_crash))

                await crash_server(servers[0])
                servers[0] = None
                # Simulate the un-fsynced tail: chop into the last record.
                wal_path = tmp_path / "replica-0" / WAL_FILE_NAME
                torn = wal_path.read_bytes()[:-17]
                wal_path.write_bytes(torn)

                restarted = await start_server(configs[0])
                servers[0] = restarted
                assert restarted.recovery_seconds > 0.0

            async with OrthrusClient(
                list(configs[0].peers),
                ClientConfig(client_id=1500, timeout=3.0, retries=5),
            ) as client:
                assert_no_failures(await submit_all(client, workload, 24))

            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(client_id=2000, timeout=3.0)
            ) as probe:
                statuses = await settled_statuses(
                    probe, minimum_committed=pre_crash + 24
                )
                assert {s.replica for s in statuses} == {0, 1, 2, 3}
                assert len({s.state_digest for s in statuses}) == 1
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


def test_genesis_recovery_wipes_durable_state_and_rejoins_via_peers(tmp_path):
    """``recovery="genesis"`` must ignore (and delete) local durable state.

    The WAL is overwritten with garbage before the restart: a snapshot-mode
    restart would have to tolerate it record by record, but genesis mode
    discards the directory outright and rebuilds purely from state transfer.
    """
    pre_crash = 24 + CRASH_POINTS.randrange(16)

    async def scenario():
        configs = cluster_configs(tmp_path, view_change_timeout=5.0)
        servers = [await start_server(config) for config in configs]
        workload = EthereumStyleWorkload(WORKLOAD)
        try:
            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(timeout=3.0, retries=5)
            ) as client:
                assert_no_failures(await submit_all(client, workload, pre_crash))

                await crash_server(servers[0])
                servers[0] = None
                wal_path = tmp_path / "replica-0" / WAL_FILE_NAME
                wal_path.write_bytes(b"not a wal\n" * 64)

                restarted = await start_server(
                    replace(configs[0], recovery="genesis")
                )
                servers[0] = restarted
                assert restarted.recovery_seconds > 0.0

            async with OrthrusClient(
                list(configs[0].peers),
                ClientConfig(client_id=1500, timeout=3.0, retries=5),
            ) as client:
                assert_no_failures(await submit_all(client, workload, 24))

            async with OrthrusClient(
                list(configs[0].peers), ClientConfig(client_id=2000, timeout=3.0)
            ) as probe:
                statuses = await settled_statuses(
                    probe, minimum_committed=pre_crash + 24
                )
                assert {s.replica for s in statuses} == {0, 1, 2, 3}
                assert len({s.state_digest for s in statuses}) == 1
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=120))


def test_churn_cycles_return_full_strength_after_each(tmp_path):
    """Two crash/restart cycles on different replicas, back to back.

    After *each* cycle the cluster must be back at full strength: all four
    replicas answering, one digest, commits advancing.
    """

    async def scenario():
        configs = cluster_configs(tmp_path, view_change_timeout=5.0)
        servers = [await start_server(config) for config in configs]
        workload = EthereumStyleWorkload(WORKLOAD)
        committed = 0
        try:
            for cycle, victim in enumerate((0, 2)):
                # One client per phase: a client whose socket to the victim
                # died with the crash never reconnects, so each cycle's
                # post-restart traffic needs a connection set that includes
                # the recovered replica.
                async with OrthrusClient(
                    list(configs[0].peers),
                    ClientConfig(client_id=1000 + cycle, timeout=3.0, retries=5),
                ) as client:
                    assert_no_failures(await submit_all(client, workload, 20))
                    committed += 20
                    await crash_server(servers[victim])
                    servers[victim] = None
                    servers[victim] = await start_server(configs[victim])
                    assert servers[victim].recovery_seconds > 0.0
                async with OrthrusClient(
                    list(configs[0].peers),
                    ClientConfig(client_id=2000 + cycle, timeout=3.0, retries=5),
                ) as probe:
                    assert_no_failures(await submit_all(probe, workload, 20))
                    committed += 20
                    statuses = await settled_statuses(
                        probe, minimum_committed=committed
                    )
                    assert {s.replica for s in statuses} == {0, 1, 2, 3}
                    assert len({s.state_digest for s in statuses}) == 1
        finally:
            await stop_servers(servers)

    asyncio.run(asyncio.wait_for(scenario(), timeout=180))


# -- configuration plumbing ---------------------------------------------------


def test_recovery_mode_is_validated():
    peers = tuple(("127.0.0.1", 9200 + index) for index in range(4))
    with pytest.raises(ConfigurationError):
        ReplicaRuntimeConfig(replica_id=0, peers=peers, recovery="bogus")
    with pytest.raises(ConfigurationError):
        ReplicaRuntimeConfig(replica_id=0, peers=peers, snapshot_every_epochs=0)


def test_restart_replica_rejects_unknown_recovery_mode():
    cluster = LocalCluster(ClusterSpec())
    try:
        with pytest.raises(ExperimentError):
            cluster.restart_replica(0, recovery="bogus")
    finally:
        cluster.stop()


def test_serve_command_carries_durability_flags(tmp_path):
    spec = ClusterSpec(
        durability=True,
        epoch_length=16,
        snapshot_every_epochs=2,
        run_dir=str(tmp_path),
    )
    cluster = LocalCluster(spec)
    try:
        command = cluster.serve_command(0, recovery="genesis")
        assert "--run-dir" in command
        assert command[command.index("--epoch-length") + 1] == "16"
        assert command[command.index("--recovery") + 1] == "genesis"
        assert command[command.index("--snapshot-every-epochs") + 1] == "2"
        # Snapshot recovery is the default and stays off the command line.
        assert "--recovery" not in cluster.serve_command(0)
    finally:
        cluster.stop()


def test_state_transfer_refuses_gapped_block_batches(tmp_path):
    """A compacted peer WAL can under-serve: when the peer's snapshot was
    not adoptable, the block batch may skip sequences below the peer's own
    WAL floor.  Executing across such a hole silently diverges the state
    machine, so the transfer must stop at the gap (and resume once a later
    reply fills it in) rather than apply whatever decodes."""
    from types import SimpleNamespace

    from repro.ledger.blocks import Block
    from repro.runtime.codec import _encode_block
    from repro.runtime.control import RecoveryReply

    config = cluster_configs(tmp_path)[0]
    core = config.build_core()
    blocks = []
    for sequence in range(4):
        blocks.append(
            Block.create(
                instance=0,
                sequence_number=sequence,
                transactions=[],
                state=core.delivered_state(),
                proposer=0,
                epoch=0,
                rank=core.next_rank() if core.uses_ranks else None,
            )
        )
        if sequence < 2:
            core.on_block_delivered(blocks[-1])

    server = ReplicaServer(config)
    server.replica = SimpleNamespace(core=core)

    def reply(*sequences):
        return RecoveryReply(
            nonce=1,
            replica=1,
            blocks=tuple(_encode_block(blocks[s]) for s in sequences),
        )

    # Sequences 0 and 1 are already delivered; 3 would leave a hole at 2.
    assert server._apply_recovery_reply(reply(0, 1, 3)) == 0
    assert list(core.delivered_state().sequence_numbers)[0] == 1
    # A later batch that fills the hole applies contiguously to the tip.
    assert server._apply_recovery_reply(reply(2, 3)) == 2
    assert list(core.delivered_state().sequence_numbers)[0] == 3
