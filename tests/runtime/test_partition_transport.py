"""Transport-level partition semantics: blocked peers, purges, WAN delays.

The partition contract lives at the transport layer: frames towards a
blocked peer are dropped (never buffered for the heal), the backlog queued
before the rule landed is purged, and every drop is counted in
``transport.partition_drops``.  WAN emulation rides the same per-frame
due-time mechanism as straggler injection, but per destination.
"""

from __future__ import annotations

import asyncio

from repro.runtime.codec import decode_envelopes
from repro.runtime.control import StatusRequest
from repro.runtime.framing import FrameError, FrameReader
from repro.runtime.transport import AsyncioTransport


def run(coro):
    return asyncio.run(coro)


class _Collector:
    """TCP server recording (arrival_time, payload) for every frame."""

    def __init__(self) -> None:
        self.received: list[tuple[float, bytes]] = []
        self.server: asyncio.Server | None = None
        self.port: int = 0
        self._got_frame = asyncio.Event()

    async def start(self) -> None:
        async def handle(reader, writer):
            frames = FrameReader(reader)
            loop = asyncio.get_running_loop()
            while True:
                try:
                    batch = await frames.read_batch()
                except FrameError:
                    break
                if batch is None:
                    break
                now = loop.time()
                for payload in batch:
                    self.received.append((now, payload))
                self._got_frame.set()

        self.server = await asyncio.start_server(handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def wait_for(self, count: int, timeout: float = 5.0) -> None:
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.received) < count:
            remaining = deadline - asyncio.get_running_loop().time()
            assert remaining > 0, f"timed out with {len(self.received)}/{count} frames"
            self._got_frame.clear()
            try:
                await asyncio.wait_for(self._got_frame.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    async def close(self) -> None:
        assert self.server is not None
        self.server.close()
        await self.server.wait_closed()

    def messages(self) -> list[tuple[float, int, object]]:
        """Flatten every frame (splitting super-frames) into messages."""
        out = []
        for arrival, payload in self.received:
            for sender, message in decode_envelopes(payload):
                out.append((arrival, sender, message))
        return out


class TestBlockedPeers:
    def test_send_to_blocked_peer_is_dropped_and_counted(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = AsyncioTransport(
                0, {0: ("127.0.0.1", 1), 1: ("127.0.0.1", collector.port)}
            )
            transport.set_blocked_peers([1])
            for nonce in range(5):
                transport.send(1, StatusRequest(nonce=nonce))
            assert transport.partition_drops == 5
            # Nothing was even queued: the writer has nothing to flush after
            # the heal.
            transport.set_blocked_peers([])
            transport.send(1, StatusRequest(nonce=99))
            await collector.wait_for(2)  # hello + the post-heal frame
            await transport.close()
            await collector.close()
            nonces = [
                m.nonce
                for _, _, m in collector.messages()
                if isinstance(m, StatusRequest)
            ]
            assert nonces == [99]

        run(scenario())

    def test_new_rule_purges_already_queued_backlog(self):
        async def scenario():
            # Point peer 1 at a port nobody listens on: frames stay queued.
            transport = AsyncioTransport(
                0, {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 9)}
            )
            for nonce in range(7):
                transport.send(1, StatusRequest(nonce=nonce))
            assert transport.partition_drops == 0
            transport.set_blocked_peers([1])
            # The queued backlog (and nothing else) was purged and counted.
            assert transport.partition_drops == 7
            await transport.close()

        run(scenario())

    def test_set_blocked_peers_is_idempotent(self):
        async def scenario():
            transport = AsyncioTransport(
                0, {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 9)}
            )
            transport.send(1, StatusRequest(nonce=1))
            transport.set_blocked_peers([1])
            drops = transport.partition_drops
            transport.set_blocked_peers([1])  # replayed update: no-op
            assert transport.partition_drops == drops
            await transport.close()

        run(scenario())

    def test_broadcast_skips_blocked_targets_only(self):
        async def scenario():
            reachable = _Collector()
            await reachable.start()
            transport = AsyncioTransport(
                0,
                {
                    0: ("127.0.0.1", 1),
                    1: ("127.0.0.1", reachable.port),
                    2: ("127.0.0.1", 9),
                },
            )
            transport.set_blocked_peers([2])
            transport.broadcast(StatusRequest(nonce=5))
            assert transport.partition_drops == 1  # the copy towards peer 2
            await reachable.wait_for(2)  # hello + the broadcast copy
            await transport.close()
            await reachable.close()
            assert any(
                isinstance(m, StatusRequest) and m.nonce == 5
                for _, _, m in reachable.messages()
            )

        run(scenario())


class TestWanDelays:
    def test_peer_delay_defers_frames_per_destination(self):
        async def scenario():
            delay = 0.25
            collector = _Collector()
            await collector.start()
            transport = AsyncioTransport(
                0,
                {0: ("127.0.0.1", 1), 1: ("127.0.0.1", collector.port)},
                peer_delay={1: delay},
            )
            queued = asyncio.get_running_loop().time()
            transport.send(1, StatusRequest(nonce=1))
            await collector.wait_for(2)  # hello + the delayed frame
            await transport.close()
            await collector.close()
            arrivals = [
                arrival
                for arrival, _, m in collector.messages()
                if isinstance(m, StatusRequest)
            ]
            assert arrivals and arrivals[0] >= queued + delay - 0.01

        run(scenario())

    def test_peer_delay_composes_with_send_delay(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = AsyncioTransport(
                0,
                {0: ("127.0.0.1", 1), 1: ("127.0.0.1", collector.port)},
                send_delay=0.1,
                peer_delay={1: 0.15},
            )
            queued = asyncio.get_running_loop().time()
            transport.send(1, StatusRequest(nonce=1))
            await collector.wait_for(2)
            await transport.close()
            await collector.close()
            arrivals = [
                arrival
                for arrival, _, m in collector.messages()
                if isinstance(m, StatusRequest)
            ]
            # Additive: 0.1 straggler + 0.15 WAN, not max() of the two.
            assert arrivals and arrivals[0] >= queued + 0.25 - 0.01

        run(scenario())

    def test_undelayed_destination_is_unaffected(self):
        async def scenario():
            collector = _Collector()
            await collector.start()
            transport = AsyncioTransport(
                0,
                {0: ("127.0.0.1", 1), 1: ("127.0.0.1", collector.port)},
                peer_delay={2: 5.0},  # a different destination entirely
            )
            queued = asyncio.get_running_loop().time()
            transport.send(1, StatusRequest(nonce=1))
            await collector.wait_for(2)
            await transport.close()
            await collector.close()
            arrivals = [
                arrival
                for arrival, _, m in collector.messages()
                if isinstance(m, StatusRequest)
            ]
            assert arrivals and arrivals[0] < queued + 1.0

        run(scenario())
