"""Tests for the error hierarchy and the package's public exports."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        subclasses = [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.SchedulingError,
            errors.NetworkError,
            errors.UnknownNodeError,
            errors.LedgerError,
            errors.ValidationError,
            errors.InsufficientFundsError,
            errors.EscrowError,
            errors.UnknownObjectError,
            errors.ConsensusError,
            errors.NotLeaderError,
            errors.OrderingError,
            errors.ViewChangeError,
            errors.WorkloadError,
            errors.ExperimentError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_specific_parents(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
        assert issubclass(errors.UnknownNodeError, errors.NetworkError)
        assert issubclass(errors.InsufficientFundsError, errors.LedgerError)
        assert issubclass(errors.NotLeaderError, errors.ConsensusError)

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.EscrowError("boom")


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points_importable(self):
        from repro import (
            CoreConfig,
            EthereumStyleWorkload,
            OrthrusCore,
            PipelineConfig,
            StateStore,
            build_core,
            run_pipeline_experiment,
        )

        assert callable(run_pipeline_experiment)
        assert callable(build_core)
        core = OrthrusCore(CoreConfig(num_instances=2), StateStore())
        assert core.name == "orthrus"
        assert EthereumStyleWorkload is not None
        assert PipelineConfig is not None

    def test_protocol_registry_matches_paper_baselines(self):
        assert set(repro.available_protocols()) == {
            "orthrus",
            "iss",
            "rcc",
            "mir",
            "dqbft",
            "ladon",
            "orthrus-dep",
        }
