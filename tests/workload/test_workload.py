"""Tests for the Ethereum-style workload generator and arrival processes."""

import pytest

from repro.errors import WorkloadError
from repro.ledger.state import StateStore
from repro.sim.rng import DeterministicRNG
from repro.workload.accounts import AccountUniverse, account_key, shared_key
from repro.workload.arrivals import burst_arrivals, poisson_arrivals, uniform_arrivals
from repro.workload.config import (
    PAPER_NUM_ACCOUNTS,
    PAPER_NUM_TRANSACTIONS,
    PAPER_PAYMENT_FRACTION,
    WorkloadConfig,
)
from repro.workload.generator import EthereumStyleWorkload


class TestWorkloadConfig:
    def test_paper_defaults(self):
        config = WorkloadConfig()
        assert config.num_accounts == PAPER_NUM_ACCOUNTS == 18_000
        assert config.num_transactions == PAPER_NUM_TRANSACTIONS == 200_000
        assert config.payment_fraction == PAPER_PAYMENT_FRACTION == 0.46
        assert config.payload_size == 500

    def test_invalid_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(payment_fraction=1.2)

    def test_invalid_accounts_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_accounts=1)

    def test_invalid_amount_range_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(min_amount=10, max_amount=5)

    def test_scaled_preserves_mix(self):
        config = WorkloadConfig().scaled(0.01)
        assert config.num_transactions == 2000
        assert config.payment_fraction == PAPER_PAYMENT_FRACTION
        assert config.num_accounts == PAPER_NUM_ACCOUNTS


class TestAccountUniverse:
    def build(self):
        return AccountUniverse(
            num_accounts=100, num_shared_objects=10, initial_balance=1000, zipf_exponent=0.8
        )

    def test_key_formats(self):
        assert account_key(3) == "acct-000003"
        assert shared_key(2) == "contract-00002"

    def test_populate_creates_all_objects(self):
        store = StateStore()
        self.build().populate(store)
        assert len(store) == 110
        assert store.balance_of("acct-000000") == 1000

    def test_sample_distinct_accounts(self):
        universe = self.build()
        rng = DeterministicRNG(1)
        accounts = universe.sample_distinct_accounts(rng, 5)
        assert len(accounts) == len(set(accounts)) == 5

    def test_zipf_skew_in_samples(self):
        universe = self.build()
        rng = DeterministicRNG(2)
        samples = [universe.sample_account(rng) for _ in range(3000)]
        top = sum(1 for s in samples if s == account_key(0))
        bottom = sum(1 for s in samples if s == account_key(99))
        assert top > bottom


class TestGenerator:
    def small_config(self, **overrides):
        params = dict(
            num_accounts=200,
            num_transactions=500,
            num_shared_objects=16,
            seed=7,
        )
        params.update(overrides)
        return WorkloadConfig(**params)

    def test_trace_is_deterministic_for_a_seed(self):
        a = EthereumStyleWorkload(self.small_config()).generate()
        b = EthereumStyleWorkload(self.small_config()).generate()
        assert [tx.tx_id for tx in a] == [tx.tx_id for tx in b]
        assert [tx.digest for tx in a] == [tx.digest for tx in b]

    def test_different_seeds_differ(self):
        a = EthereumStyleWorkload(self.small_config(seed=1)).generate()
        b = EthereumStyleWorkload(self.small_config(seed=2)).generate()
        assert [tx.tx_id for tx in a] != [tx.tx_id for tx in b]

    def test_payment_fraction_approximated(self):
        trace = EthereumStyleWorkload(self.small_config(num_transactions=2000)).generate()
        assert abs(trace.statistics.payment_fraction - 0.46) < 0.05

    def test_extreme_fractions(self):
        all_pay = EthereumStyleWorkload(
            self.small_config(payment_fraction=1.0)
        ).generate(200)
        assert all_pay.statistics.payments == 200
        no_pay = EthereumStyleWorkload(
            self.small_config(payment_fraction=0.0)
        ).generate(200)
        assert no_pay.statistics.contracts == 200

    def test_payments_are_balanced(self):
        trace = EthereumStyleWorkload(self.small_config()).generate()
        for tx in trace:
            if tx.is_payment:
                assert tx.total_debit() == tx.total_credit()

    def test_contracts_touch_shared_objects(self):
        trace = EthereumStyleWorkload(self.small_config(payment_fraction=0.0)).generate(50)
        assert all(tx.shared_keys() for tx in trace)

    def test_primary_payer_override(self):
        workload = EthereumStyleWorkload(self.small_config())
        tx = workload.next_transaction(primary_payer="acct-000042")
        assert "acct-000042" in tx.payers()

    def test_trace_statistics_consistency(self):
        trace = EthereumStyleWorkload(self.small_config()).generate(300)
        stats = trace.statistics
        assert stats.total == 300 == len(trace)
        assert stats.payments + stats.contracts == stats.total
        assert 0 < stats.unique_accounts <= 200

    def test_stream_yields_requested_count(self):
        workload = EthereumStyleWorkload(self.small_config())
        assert len(list(workload.stream(25))) == 25

    def test_payload_size_propagates(self):
        config = self.small_config(payload_size=900)
        trace = EthereumStyleWorkload(config).generate(10)
        assert all(tx.payload_size == 900 for tx in trace)


class TestArrivals:
    def test_poisson_rate_approximation(self):
        schedule = poisson_arrivals(5000, 1000.0, DeterministicRNG(1))
        assert len(schedule) == 5000
        assert schedule.horizon == pytest.approx(5.0, rel=0.15)
        assert list(schedule) == sorted(schedule.times)

    def test_uniform_arrivals_evenly_spaced(self):
        schedule = uniform_arrivals(5, 10.0, start=1.0)
        assert schedule.times == [1.0, 1.1, 1.2, 1.3, 1.4]

    def test_burst_arrivals_all_at_start(self):
        schedule = burst_arrivals(3, start=2.0)
        assert schedule.times == [2.0, 2.0, 2.0]

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0, DeterministicRNG(0))
        with pytest.raises(ValueError):
            uniform_arrivals(10, -1.0)

    def test_empty_schedule_horizon(self):
        assert burst_arrivals(0).horizon == 0.0
