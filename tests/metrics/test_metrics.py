"""Tests for latency tracking, throughput series and run metrics."""

import pytest

from repro.metrics.latency import (
    STAGE_NAMES,
    LatencySummary,
    LatencyTracker,
    TransactionTimeline,
)
from repro.metrics.summary import MetricsCollector
from repro.metrics.throughput import ThroughputTracker


class TestTimeline:
    def complete_timeline(self):
        timeline = TransactionTimeline("tx")
        timeline.submitted_at = 0.0
        timeline.received_at = 0.1
        timeline.proposed_at = 0.3
        timeline.delivered_at = 0.8
        timeline.confirmed_at = 1.5
        timeline.replied_at = 1.6
        return timeline

    def test_stage_durations(self):
        durations = self.complete_timeline().stage_durations()
        assert durations["send"] == pytest.approx(0.1)
        assert durations["preprocessing"] == pytest.approx(0.2)
        assert durations["partial_ordering"] == pytest.approx(0.5)
        assert durations["global_ordering"] == pytest.approx(0.7)
        assert durations["reply"] == pytest.approx(0.1)
        assert sum(durations.values()) == pytest.approx(1.6)

    def test_incomplete_timeline_has_no_breakdown(self):
        timeline = TransactionTimeline("tx", submitted_at=0.0)
        assert timeline.stage_durations() is None
        assert not timeline.complete

    def test_end_to_end(self):
        assert self.complete_timeline().end_to_end == pytest.approx(1.6)
        assert TransactionTimeline("x").end_to_end is None


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(22.0)
        assert summary.median == 3.0
        assert summary.maximum == 100.0
        assert summary.p95 == 100.0

    def test_empty_samples(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean == 0.0


class TestLatencyTracker:
    def test_first_receipt_wins(self):
        tracker = LatencyTracker()
        tracker.record_received("tx", 1.0)
        tracker.record_received("tx", 0.5)
        tracker.record_received("tx", 2.0)
        assert tracker.timeline("tx").received_at == 0.5

    def test_confirmation_recorded_once(self):
        tracker = LatencyTracker()
        tracker.record_confirmed("tx", 1.0, committed=True)
        tracker.record_confirmed("tx", 5.0, committed=False)
        timeline = tracker.timeline("tx")
        assert timeline.confirmed_at == 1.0
        assert timeline.committed

    def test_stage_breakdown_averages_complete_timelines(self):
        tracker = LatencyTracker()
        for index, tx_id in enumerate(("a", "b")):
            tracker.record_submitted(tx_id, 0.0)
            tracker.record_received(tx_id, 0.1)
            tracker.record_proposed(tx_id, 0.2)
            tracker.record_delivered(tx_id, 0.4)
            tracker.record_confirmed(tx_id, 0.5 + index, committed=True)
            tracker.record_replied(tx_id, 0.6 + index)
        breakdown = tracker.stage_breakdown()
        assert set(breakdown) == set(STAGE_NAMES)
        assert breakdown["global_ordering"] == pytest.approx(0.6)

    def test_breakdown_empty_when_no_complete_timelines(self):
        tracker = LatencyTracker()
        tracker.record_submitted("x", 0.0)
        assert all(value == 0.0 for value in tracker.stage_breakdown().values())

    def test_latency_series_windows(self):
        tracker = LatencyTracker()
        for tx_id, submit, confirm in (("a", 0.0, 0.4), ("b", 0.0, 0.6), ("c", 0.5, 0.9)):
            tracker.record_submitted(tx_id, submit)
            tracker.record_confirmed(tx_id, confirm, committed=True)
        series = tracker.latency_series(0.0, 1.0, window=0.5)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(0.4)
        assert series[1][1] == pytest.approx((0.6 + 0.4) / 2)

    def test_confirmation_latency_summary(self):
        tracker = LatencyTracker()
        tracker.record_submitted("a", 1.0)
        tracker.record_confirmed("a", 3.0, committed=True)
        summary = tracker.confirmation_latency_summary()
        assert summary.count == 1
        assert summary.mean == pytest.approx(2.0)


class TestThroughputTracker:
    def test_rate_over_interval(self):
        tracker = ThroughputTracker()
        for time in (0.1, 0.2, 0.9, 1.5):
            tracker.record_confirmation(time)
        assert tracker.total_confirmed == 4
        assert tracker.rate_over(0.0, 1.0) == pytest.approx(3.0)
        assert tracker.rate_over(1.0, 2.0) == pytest.approx(1.0)
        assert tracker.rate_over(2.0, 2.0) == 0.0

    def test_series_windows(self):
        tracker = ThroughputTracker()
        for time in (0.1, 0.2, 0.6, 1.4):
            tracker.record_confirmation(time)
        series = tracker.series(0.0, 1.5, window=0.5)
        assert [point.transactions for point in series] == [2, 1, 1]
        assert series[0].rate == pytest.approx(4.0)

    def test_empty_series_for_bad_bounds(self):
        assert ThroughputTracker().series(1.0, 0.5) == []

    def test_empty_and_degenerate_windows(self):
        tracker = ThroughputTracker()
        assert tracker.rate_over(0.0, 1.0) == 0.0
        assert tracker.rate_over(1.0, 1.0) == 0.0
        assert tracker.rate_over(2.0, 1.0) == 0.0
        assert tracker.series(0.0, 0.0) == []
        assert tracker.series(0.0, 1.0, window=0.0) == []
        assert tracker.series(0.0, 1.0, window=-1.0) == []
        # An empty tracker still produces zero-count windows over the span.
        series = tracker.series(0.0, 1.0, window=0.5)
        assert [point.transactions for point in series] == [0, 0]
        assert all(point.rate == 0.0 for point in series)

    def test_zero_duration_point_has_zero_rate(self):
        from repro.metrics.throughput import ThroughputPoint

        assert ThroughputPoint(1.0, 1.0, transactions=5).rate == 0.0

    def test_confirmations_outside_bounds_are_excluded(self):
        tracker = ThroughputTracker()
        for time in (-1.0, 0.0, 0.49, 0.5, 0.99, 1.0, 5.0):
            tracker.record_confirmation(time)
        series = tracker.series(0.0, 1.0, window=0.5)
        # [0, 0.5) holds {0.0, 0.49}; [0.5, 1.0) holds {0.5, 0.99};
        # -1.0, 1.0 and 5.0 fall outside the series bounds.
        assert [point.transactions for point in series] == [2, 2]
        assert sum(point.transactions for point in series) == 4

    def test_series_windows_do_not_drift(self):
        tracker = ThroughputTracker()
        # 0.1 is not exactly representable in binary floating point, so the
        # old accumulating window_start += window drifted over many windows;
        # index-based boundaries must stay on the start + i*window grid.
        count = 10_000
        series = tracker.series(0.0, count * 0.1, window=0.1)
        assert len(series) == count
        for index in (0, 1, 4_999, 9_999):
            point = series[index]
            assert point.window_start == pytest.approx(index * 0.1, abs=1e-9)
        # Windows tile the span exactly: each ends where the next begins.
        for left, right in zip(series, series[1:]):
            assert left.window_end == right.window_start

    def test_final_partial_window_is_clamped(self):
        tracker = ThroughputTracker()
        tracker.record_confirmation(1.1)
        series = tracker.series(0.0, 1.2, window=0.5)
        assert len(series) == 3
        assert series[-1].window_end == pytest.approx(1.2)
        assert series[-1].transactions == 1
        # The clamped window's rate uses its true (shorter) duration.
        assert series[-1].rate == pytest.approx(1 / (1.2 - 1.0))


class TestMetricsCollector:
    def test_record_outcome_and_finalize(self):
        collector = MetricsCollector()
        collector.latency.record_submitted("a", 0.0)
        collector.record_outcome("a", 1.0, committed=True, partial_path=True)
        collector.latency.record_submitted("b", 0.5)
        collector.record_outcome("b", 1.9, committed=False, partial_path=False)
        metrics = collector.finalize(start=0.0, end=2.0, extra={"custom": 7.0})
        assert metrics.confirmed == 2
        assert metrics.committed == 1
        assert metrics.rejected == 1
        assert metrics.partial_path == 1
        assert metrics.global_path == 1
        assert metrics.throughput_tps == pytest.approx(1.0)
        assert metrics.throughput_ktps == pytest.approx(0.001)
        assert metrics.extra["custom"] == 7.0
        assert metrics.duration == pytest.approx(2.0)
        assert len(metrics.series) == 4


class TestStageBreakdownPartial:
    """Edge cases of the live runtime's per-stage averaging.

    Live replica timelines are never complete (the replica cannot observe
    the client's reply receipt), so each stage averages over whichever
    timelines hold *that stage's* two boundaries.
    """

    def test_empty_tracker_reports_all_zero_stages(self):
        tracker = LatencyTracker()
        breakdown = tracker.stage_breakdown_partial()
        assert set(breakdown) == set(STAGE_NAMES)
        assert all(value == 0.0 for value in breakdown.values())

    def test_zero_confirmed_transactions(self):
        # Submissions that never execute contribute only their early stages.
        tracker = LatencyTracker()
        tracker.record_submitted("t1", 1.0)
        tracker.record_received("t1", 1.5)
        breakdown = tracker.stage_breakdown_partial()
        assert breakdown["send"] == pytest.approx(0.5)
        for stage in ("preprocessing", "partial_ordering", "global_ordering", "reply"):
            assert breakdown[stage] == 0.0
        assert tracker.confirmed_timelines() == []

    def test_missing_interior_stage_does_not_poison_neighbours(self):
        # A timeline missing proposed_at (e.g. the tx rode a block proposed
        # by an uninstrumented replica) contributes send and global_ordering
        # but neither preprocessing nor partial_ordering.
        tracker = LatencyTracker()
        tracker.record_submitted("t1", 1.0)
        tracker.record_received("t1", 1.2)
        tracker.record_delivered("t1", 2.0)
        tracker.record_confirmed("t1", 2.5, committed=True)
        breakdown = tracker.stage_breakdown_partial()
        assert breakdown["send"] == pytest.approx(0.2)
        assert breakdown["preprocessing"] == 0.0
        assert breakdown["partial_ordering"] == 0.0
        assert breakdown["global_ordering"] == pytest.approx(0.5)

    def test_stages_average_over_different_timeline_subsets(self):
        tracker = LatencyTracker()
        # t1: full replica-side path.
        tracker.record_submitted("t1", 0.0)
        tracker.record_received("t1", 1.0)
        tracker.record_proposed("t1", 2.0)
        tracker.record_delivered("t1", 3.0)
        tracker.record_confirmed("t1", 4.0, committed=True)
        # t2: only the send stage recorded.
        tracker.record_submitted("t2", 0.0)
        tracker.record_received("t2", 3.0)
        breakdown = tracker.stage_breakdown_partial()
        assert breakdown["send"] == pytest.approx(2.0)  # mean of 1.0 and 3.0
        assert breakdown["preprocessing"] == pytest.approx(1.0)  # t1 only
        assert breakdown["partial_ordering"] == pytest.approx(1.0)
        assert breakdown["global_ordering"] == pytest.approx(1.0)
        assert breakdown["reply"] == 0.0  # replicas never see it

    def test_client_replica_clock_composition(self):
        # The live loadgen composes client-side stamps (submitted, replied)
        # with replica-side stamps on one shared monotonic clock; the partial
        # breakdown must bridge both without requiring complete timelines.
        tracker = LatencyTracker()
        tracker.record_submitted("t1", 10.0)   # client clock
        tracker.record_received("t1", 10.3)    # replica clock
        tracker.record_confirmed("t1", 11.0, committed=True)  # replica clock
        tracker.record_replied("t1", 11.4)     # client clock
        breakdown = tracker.stage_breakdown_partial()
        assert breakdown["send"] == pytest.approx(0.3)
        assert breakdown["reply"] == pytest.approx(0.4)

    def test_partial_and_complete_breakdowns_agree_on_complete_timelines(self):
        tracker = LatencyTracker()
        for index, base in enumerate((0.0, 10.0)):
            tx = f"t{index}"
            tracker.record_submitted(tx, base)
            tracker.record_received(tx, base + 0.1)
            tracker.record_proposed(tx, base + 0.3)
            tracker.record_delivered(tx, base + 0.6)
            tracker.record_confirmed(tx, base + 1.0, committed=True)
            tracker.record_replied(tx, base + 1.5)
        assert tracker.stage_breakdown_partial() == pytest.approx(
            tracker.stage_breakdown()
        )
